// Package repro_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus ablation benchmarks for the
// design choices DESIGN.md calls out and micro-benchmarks of the hot
// substrate paths.
//
// Experiment benchmarks report the headline quantity of their artifact
// as a custom metric (FPS, °C, shares), so a bench run doubles as a
// reproduction log: compare the reported metrics with the paper values
// recorded in EXPERIMENTS.md.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/appaware"
	"repro/internal/benchkit"
	"repro/internal/dvfs"
	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stability"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/workload"
)

const benchSeed = 1

// BenchmarkFig1PaperIOTemperature regenerates Figure 1: the Paper.io
// temperature profiles with and without throttling.
func BenchmarkFig1PaperIOTemperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TempProfileExperiment("paper.io", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Without.Max(), "peakC-free")
		b.ReportMetric(res.With.Max(), "peakC-throttled")
	}
}

// BenchmarkFig2PaperIOGPUResidency regenerates Figure 2: Paper.io GPU
// frequency residency.
func BenchmarkFig2PaperIOGPUResidency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ResidencyExperiment("paper.io", platform.DomGPU, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Without[510e6]*100, "pct510-free")
		b.ReportMetric(res.With[510e6]*100, "pct510-throttled")
	}
}

// BenchmarkFig3StickmanTemperature regenerates Figure 3.
func BenchmarkFig3StickmanTemperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TempProfileExperiment("stickman-hook", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Without.Max(), "peakC-free")
		b.ReportMetric(res.With.Max(), "peakC-throttled")
	}
}

// BenchmarkFig4StickmanGPUResidency regenerates Figure 4.
func BenchmarkFig4StickmanGPUResidency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ResidencyExperiment("stickman-hook", platform.DomGPU, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Without[390e6]*100, "pct390-free")
		b.ReportMetric(res.With[390e6]*100, "pct390-throttled")
	}
}

// BenchmarkFig5AmazonTemperature regenerates Figure 5.
func BenchmarkFig5AmazonTemperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TempProfileExperiment("amazon", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Without.Max(), "peakC-free")
		b.ReportMetric(res.With.Max(), "peakC-throttled")
	}
}

// BenchmarkFig6AmazonBigResidency regenerates Figure 6: Amazon big
// cluster residency (the paper highlights the 384 MHz shift).
func BenchmarkFig6AmazonBigResidency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ResidencyExperiment("amazon", platform.DomBig, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Without[384e6]*100, "pct384-free")
		b.ReportMetric(res.With[384e6]*100, "pct384-throttled")
	}
}

// BenchmarkTable1MedianFPS regenerates Table I: median FPS across the
// five apps under both arms. The reported metric is the largest
// percentage reduction ("up to 34%" in the paper's abstract).
func BenchmarkTable1MedianFPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1Experiment(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			if r.ReductionPct > worst {
				worst = r.ReductionPct
			}
		}
		b.ReportMetric(worst, "maxReductionPct")
	}
}

// BenchmarkFig7FixedPoint regenerates Figure 7: the fixed-point
// function at 2 W, the critical power, and 8 W.
func BenchmarkFig7FixedPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, crit, err := experiments.Fig7Experiment()
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 3 {
			b.Fatalf("want 3 curves, got %d", len(curves))
		}
		b.ReportMetric(crit, "criticalW")
	}
}

// BenchmarkFig8MaxTemperature regenerates Figure 8: the maximum system
// temperature under the three 3DMark scenarios.
func BenchmarkFig8MaxTemperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8Experiment(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Alone.Max(), "peakC-alone")
		b.ReportMetric(res.WithBML.Max(), "peakC-bml")
		b.ReportMetric(res.Proposed.Max(), "peakC-proposed")
	}
}

// BenchmarkFig9PowerDistribution regenerates Figure 9: the power
// distribution pies of the three 3DMark scenarios.
func BenchmarkFig9PowerDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9Experiment(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[experiments.WithBML].TotalW, "totalW-bml")
		b.ReportMetric(res[experiments.WithBML].Shares[power.RailBig]*100, "bigPct-bml")
		b.ReportMetric(res[experiments.Proposed].Shares[power.RailLittle]*100, "littlePct-proposed")
	}
}

// BenchmarkTable2Proposed regenerates Table II: 3DMark GT1/GT2 and
// Nenamark under alone / +BML / proposed control.
func BenchmarkTable2Proposed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2Experiment(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].WithBML, "gt1-bml")
		b.ReportMetric(rows[0].Proposed, "gt1-proposed")
		b.ReportMetric(rows[2].Proposed, "nenamark-proposed")
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md §5) ---

// odroidBMLScenario builds the 3DMark+BML engine with the given
// appaware configuration.
func odroidBMLScenario(b *testing.B, cfg appaware.Config, registerRT bool) (*sim.Engine, *appaware.Governor) {
	return odroidBMLScenarioRec(b, cfg, registerRT, false)
}

// odroidBMLScenarioRec additionally controls trace recording; the
// zero-alloc benchmark disables it to measure the bare step loop.
func odroidBMLScenarioRec(b *testing.B, cfg appaware.Config, registerRT, disableRecording bool) (*sim.Engine, *appaware.Governor) {
	b.Helper()
	plat := platform.OdroidXU3(benchSeed)
	bml := workload.NewBML()
	bml.ExecuteRatio = 0
	gov, err := appaware.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		b.Fatal(err)
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		b.Fatal(err)
	}
	gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Platform: plat,
		Apps: []sim.AppSpec{
			{App: workload.NewThreeDMark(benchSeed), PID: 1, Cluster: sched.Big, Threads: 2, RealTime: registerRT},
			{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: littleGov,
			platform.DomBig:    bigGov,
			platform.DomGPU:    gpuGov,
		},
		Controller:       gov,
		DisableRecording: disableRecording,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := plat.Prewarm(experiments.OdroidPrewarmC); err != nil {
		b.Fatal(err)
	}
	return eng, gov
}

// BenchmarkAblationControlPeriod sweeps the governor's control period
// (the paper fixes it at 100 ms): faster control reacts sooner at more
// overhead; slower control lets temperature overshoot.
func BenchmarkAblationControlPeriod(b *testing.B) {
	for _, period := range []float64{0.05, 0.1, 0.5, 2.0} {
		b.Run(fmtSeconds(period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, gov := odroidBMLScenario(b, appaware.Config{
					HorizonS:  30,
					IntervalS: period,
				}, true)
				if err := eng.Run(120); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(thermal.ToCelsius(eng.MaxTempSeenK()), "peakC")
				b.ReportMetric(float64(gov.Predictions()), "predictions")
			}
		})
	}
}

// BenchmarkAblationRTRegistration compares victim selection with and
// without the real-time registration interface. Without it, the
// foreground benchmark itself can be migrated — exactly the collateral
// damage the paper's registration mechanism prevents.
func BenchmarkAblationRTRegistration(b *testing.B) {
	for _, registered := range []bool{true, false} {
		name := "registered"
		if !registered {
			name = "unregistered"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, gov := odroidBMLScenario(b, appaware.Config{
					HorizonS:  30,
					IntervalS: 0.1,
				}, registered)
				if err := eng.Run(120); err != nil {
					b.Fatal(err)
				}
				fgMigrated := 0.0
				for _, ev := range gov.Events() {
					if ev.Kind == appaware.EventMigrate && ev.PID == 1 {
						fgMigrated = 1
					}
				}
				b.ReportMetric(fgMigrated, "foregroundMigrated")
				b.ReportMetric(float64(gov.Migrations()), "migrations")
			}
		})
	}
}

// BenchmarkAblationIntegrator compares RK4 against forward Euler for
// the thermal network at the simulator's 1 ms step: accuracy is
// indistinguishable at this step size, so the choice is about cost.
func BenchmarkAblationIntegrator(b *testing.B) {
	build := func() (*thermal.Network, []float64) {
		plat := platform.OdroidXU3(benchSeed)
		powers := make([]float64, plat.Net.NumNodes())
		powers[plat.Node(platform.DomBig)] = 3
		powers[plat.Node(platform.DomGPU)] = 1.5
		return plat.Net, powers
	}
	b.Run("rk4", func(b *testing.B) {
		net, powers := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := net.Step(0.001, powers); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("euler", func(b *testing.B) {
		net, powers := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := net.StepEuler(0.001, powers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLimitSweep maps the thermal-limit trade-off space
// of the proposed governor (DESIGN.md's extension study): foreground
// protection vs. background progress across limits.
func BenchmarkAblationLimitSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.LimitSweep([]float64{52, 60, 70}, 120, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].GT1FPS, "gt1-tight")
		b.ReportMetric(points[2].GT1FPS, "gt1-loose")
		b.ReportMetric(float64(points[0].BMLIterations)/1e6, "bmlMiters-tight")
		b.ReportMetric(float64(points[2].BMLIterations)/1e6, "bmlMiters-loose")
	}
}

// BenchmarkSweepParallel measures the scenario-sweep pool: the same
// 8-scenario 3DMark+BML limit matrix executed serially and on 4
// workers. On multi-core hardware the 4-worker run should complete
// >1.8× faster; the determinism invariant guarantees both report
// identical metrics.
func BenchmarkSweepParallel(b *testing.B) {
	matrix := sweep.Matrix{
		Platforms:  []string{experiments.PlatformOdroid},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{experiments.GovAppAware},
		LimitsC:    []float64{52, 58, 64, 70},
		Replicates: 2,
		DurationS:  10,
		BaseSeed:   benchSeed,
	}
	scenarios, err := matrix.Scenarios()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool := &sweep.Pool{Workers: workers, RunFunc: experiments.RunScenario}
				results, err := pool.Run(context.Background(), scenarios)
				if err != nil {
					b.Fatal(err)
				}
				summaries, err := sweep.Aggregate(results)
				if err != nil {
					b.Fatal(err)
				}
				if len(summaries) != 4 {
					b.Fatalf("want 4 cells, got %d", len(summaries))
				}
				b.ReportMetric(summaries[0].Metrics[experiments.MetricPeakC].Mean, "peakC-tight")
				b.ReportMetric(summaries[3].Metrics[experiments.MetricPeakC].Mean, "peakC-loose")
			}
		})
	}
}

// BenchmarkSweepBatched measures the batched lockstep sweep executor
// on the same 8-scenario matrix as BenchmarkSweepParallel: scenarios
// grouped by platform, packed into lanes, and stepped together through
// the fused structure-of-arrays thermal kernel on pooled engines. The
// cells/sec metric is the comparison point — the PR-4 target is ≥2×
// BenchmarkSweepParallel — and the output bytes are pinned identical
// to the sequential path by the mobisim differential tests.
func BenchmarkSweepBatched(b *testing.B) {
	for _, width := range []int{4, 8} {
		b.Run("width-"+itoa(width), benchkit.SweepBatched(width))
	}
}

// BenchmarkSweepSequentialBaseline is BenchmarkSweepParallel's matrix
// through the same facade entry point the batched benchmark uses
// (RunSweep, batching disabled), isolating the executor difference
// from any facade overhead for benchdiff comparisons.
func BenchmarkSweepSequentialBaseline(b *testing.B) {
	benchkit.SweepParallel(1)(b)
}

// BenchmarkSweepWarm measures the prefix warm-start executor on the
// replicate-heavy reference matrix (4 limits × 8 replicates): limit
// cells grouped by prefix content key, each group's warm-up simulated
// once on a sentinel, members forked from an engine snapshot. The
// cells/sec metric is the PR-6 headline — the target is ≥1.5× the cold
// batched executor on the same matrix — and warm output bytes are
// pinned identical to cold by the mobisim warm-start tests.
func BenchmarkSweepWarm(b *testing.B) {
	b.Run("batched-8", benchkit.SweepWarm(8))
	b.Run("scalar", benchkit.SweepWarm(0))
}

// BenchmarkSweepWarmColdBaseline is the cold counterpart of
// BenchmarkSweepWarm: the same replicate-heavy matrix on the batched
// executor without warm-start, so benchdiff can compare like with like.
func BenchmarkSweepWarmColdBaseline(b *testing.B) {
	benchkit.SweepWarmColdBaseline(8)(b)
}

// BenchmarkDaemonSweepCold measures the simd daemon's compute path end
// to end: the replicate-heavy matrix submitted over HTTP to an
// in-process server, simulated, encoded, and fetched. Each iteration
// shifts the base seed so its cells miss the cache.
func BenchmarkDaemonSweepCold(b *testing.B) {
	benchkit.DaemonSweepCold(b)
}

// BenchmarkDaemonSweepColdBatched is the cold daemon benchmark on the
// batched lockstep executor (width 8, the daemon default). Result
// bytes are identical to the scalar run's; cold cells/sec against
// BenchmarkDaemonSweepCold is the PR-10 headline.
func BenchmarkDaemonSweepColdBatched(b *testing.B) {
	benchkit.DaemonSweepColdBatched(b)
}

// BenchmarkDaemonSweepWarm is the cache-hit counterpart: the matrix is
// primed once outside the timer and every timed resubmission must be
// answered entirely from the content-addressed cache. Cold vs warm
// cells/sec is the PR-7 headline.
func BenchmarkDaemonSweepWarm(b *testing.B) {
	benchkit.DaemonSweepWarm(b)
}

// BenchmarkExploreGeneration measures the design-space-exploration
// loop: the committed benchmark search (limit × cpu-governor hill-climb
// on the Odroid) run cold — every generation evaluated as lockstep
// batches on pooled engines — and cache-warm, where a primed
// content-addressed cache must answer every cell. Cold vs warm
// cells/sec is the PR-8 headline, and the search trajectory itself is
// pinned byte-identical across executors by the optimize tests.
func BenchmarkExploreGeneration(b *testing.B) {
	b.Run("cold", benchkit.ExploreGenerationCold)
	b.Run("warm", benchkit.ExploreGenerationWarm)
}

// BenchmarkExploreCandidateStep measures the candidate-evaluation
// steady state: 8 mutated candidates coupled on a pooled lockstep
// engine, one fused step per iteration. CI gates it at 0 allocs/op —
// the explore loop's generations must not allocate while stepping.
func BenchmarkExploreCandidateStep(b *testing.B) {
	benchkit.ExploreCandidateStep(8)(b)
}

// BenchmarkEngineStepForked measures the steady-state step cost of an
// engine restored from a snapshot — the warm executor's fork path. CI
// gates it at 0 allocs/op next to the cold step benchmarks: restoring
// must not leave the step loop allocating.
func BenchmarkEngineStepForked(b *testing.B) {
	benchkit.ForkedEngineStep(b)
}

// BenchmarkBatchEngineStep measures one fused lockstep step across 8
// lanes of the Odroid scenario. CI gates it at 0 allocs/op — the
// batched path's steady-state allocation invariant — and the
// ns/lane-step metric is directly comparable to BenchmarkEngineStep.
func BenchmarkBatchEngineStep(b *testing.B) {
	benchkit.BatchEngineStep(8)(b)
}

// BenchmarkBatchEngineStepObserved is BenchmarkBatchEngineStep with a
// per-lane sample observer attached, the batched simd daemon's step
// configuration. CI gates it at 0 allocs/op — observer attachment must
// not make the fused step loop allocate.
func BenchmarkBatchEngineStepObserved(b *testing.B) {
	benchkit.BatchEngineStepObserved(8)(b)
}

// --- Micro-benchmarks of the substrate hot paths ---

// BenchmarkStabilityAnalyze measures one fixed-point analysis, the
// operation the governor runs every 100 ms.
func BenchmarkStabilityAnalyze(b *testing.B) {
	p := stability.DefaultOdroidParams()
	for i := 0; i < b.N; i++ {
		if _, err := p.Analyze(3.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStabilityTimeToThreshold measures the transient estimate.
func BenchmarkStabilityTimeToThreshold(b *testing.B) {
	p := stability.DefaultOdroidParams()
	for i := 0; i < b.N; i++ {
		if _, err := p.TimeToThreshold(3.0, 310, 340, 600); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerAssign measures one scheduling step with a
// realistic task mix.
func BenchmarkSchedulerAssign(b *testing.B) {
	s := sched.New()
	for pid := 1; pid <= 8; pid++ {
		cl := sched.Little
		if pid%2 == 0 {
			cl = sched.Big
		}
		if err := s.Add(sched.Task{PID: pid, Name: "t", DemandHz: float64(pid) * 1e8, Threads: 2, Cluster: cl}); err != nil {
			b.Fatal(err)
		}
	}
	caps := map[sched.ClusterID]sched.Capacity{
		sched.Little: {FreqHz: 1400e6, Cores: 4},
		sched.Big:    {FreqHz: 2000e6, Cores: 4},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Assign(caps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGovernorDecide measures one interactive-governor decision.
func BenchmarkGovernorDecide(b *testing.B) {
	g, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		b.Fatal(err)
	}
	d, err := dvfs.NewDomain("big", platform.CortexA15Table(), 0)
	if err != nil {
		b.Fatal(err)
	}
	in := governor.Input{NowS: 1, UtilCores: 2.5, MaxCoreLoad: 0.9, OnlineCores: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Decide(in, d)
	}
}

// BenchmarkEngineStep measures whole-simulator throughput: simulated
// milliseconds per wall second on the full Odroid scenario.
func BenchmarkEngineStep(b *testing.B) {
	eng, _ := odroidBMLScenario(b, appaware.Config{HorizonS: 30, IntervalS: 0.1}, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Run(0.001); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStepNoRecording is BenchmarkEngineStep with the
// built-in recording sink disabled — the sweep pool's constant-memory
// configuration, and the exact target of the zero-alloc invariant
// (recording adds amortized trace-series appends on the trace period).
// CI gates this and BenchmarkEngineStep at 0 allocs/op.
func BenchmarkEngineStepNoRecording(b *testing.B) {
	eng, _ := odroidBMLScenarioRec(b, appaware.Config{HorizonS: 30, IntervalS: 0.1}, true, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunSteps(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBMLIteration measures the real basicmath kernel cost.
func BenchmarkBMLIteration(b *testing.B) {
	var w struct{ workload.BML }
	w.ExecuteRatio = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Advance(float64(i)*0.001, 0.001, workload.Resources{CPUSpeedHz: 4.5e8})
	}
	if w.Checksum() == 0 {
		b.Fatal("kernels did not run")
	}
}

func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return "period-" + itoa(int(s)) + "s"
	default:
		return "period-" + itoa(int(s*1000)) + "ms"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
