package simclient

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"repro/pkg/mobisim"
)

// Runner adapts a Client into a mobisim.CellRunner: each generation's
// cache-miss cells are submitted to the daemon as one scenarios-list
// job and the per-cell metrics are collected from the job's SSE feed
// (the "cell" events carry them exactly; only non-finite values are
// transport-mapped, which the CellRunner contract permits). A daemon
// crash mid-generation is absorbed by idempotent resubmission: the
// restarted daemon serves completed cells from its result cache and
// recomputes the rest, so the search trajectory stays byte-identical
// to local evaluation.
type Runner struct {
	Client *Client
}

// cellEvent mirrors the daemon's "cell" SSE payload. Metric values
// are pointers because the daemon maps non-finite values to null.
type cellEvent struct {
	Index   int                 `json:"index"`
	Metrics map[string]*float64 `json:"metrics"`
}

// endEvent mirrors the terminal "end" SSE payload's relevant fields.
type endEvent struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// RunScenarios implements mobisim.CellRunner.
func (r *Runner) RunScenarios(ctx context.Context, specs []mobisim.Scenario) ([]map[string]float64, error) {
	envelope, err := scenariosEnvelope(specs)
	if err != nil {
		return nil, err
	}
	c := r.Client

	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt-1, 0); err != nil {
				return nil, err
			}
			c.logf("simclient: remote generation retry: %v", lastErr)
		}
		st, err := c.Submit(ctx, envelope)
		if err != nil {
			return nil, err
		}
		out := make([]map[string]float64, len(specs))
		got := 0
		var endErr error
		// Always stream from 0: cell metrics are content-addressed, so
		// replayed or duplicated events are idempotent by index, and a
		// restarted daemon's fresh event ids can never be filtered away.
		_, serr := c.Stream(ctx, st.ID, 0, func(ev Event) error {
			switch ev.Type {
			case "cell":
				var ce cellEvent
				if err := json.Unmarshal(ev.Data, &ce); err != nil {
					return fmt.Errorf("simclient: cell event: %w", err)
				}
				if ce.Index < 0 || ce.Index >= len(out) {
					return fmt.Errorf("simclient: cell event index %d out of range (%d cells)", ce.Index, len(out))
				}
				m := make(map[string]float64, len(ce.Metrics))
				for name, v := range ce.Metrics {
					if v == nil {
						// The daemon transports non-finite values as
						// null; NaN preserves "non-finite" through the
						// replicate aggregation, which is all that can
						// matter to the trajectory.
						m[name] = math.NaN()
						continue
					}
					m[name] = *v
				}
				if out[ce.Index] == nil {
					got++
				}
				out[ce.Index] = m
			case "end":
				var ee endEvent
				if err := json.Unmarshal(ev.Data, &ee); err != nil {
					return fmt.Errorf("simclient: end event: %w", err)
				}
				if ee.State == StateFailed {
					endErr = fmt.Errorf("simclient: job %s failed: %s", st.ID, ee.Error)
				} else if ee.State == StateCanceled {
					endErr = errResubmit
				}
			}
			return nil
		})
		switch {
		case serr == nil && endErr == nil && got == len(specs):
			return out, nil
		case serr == nil && endErr == nil:
			return nil, fmt.Errorf("simclient: job %s completed with %d of %d cell events", st.ID, got, len(specs))
		case endErr != nil && endErr != errResubmit:
			return nil, endErr
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			// Stream broke or the daemon canceled the job (shutdown):
			// back off and resubmit idempotently.
			lastErr = serr
			if lastErr == nil {
				lastErr = fmt.Errorf("job canceled by daemon")
			}
		}
	}
	return nil, fmt.Errorf("simclient: remote generation: giving up after %d attempts: %w", c.maxAttempts(), lastErr)
}

// errResubmit marks a daemon-side cancellation worth resubmitting.
var errResubmit = fmt.Errorf("simclient: resubmit")

// scenariosEnvelope renders the scenarios-list job body. The encoding
// is deterministic (struct field order, normalized scenarios), so
// identical generations hash to identical idempotency keys.
func scenariosEnvelope(specs []mobisim.Scenario) ([]byte, error) {
	raws := make([]json.RawMessage, len(specs))
	for i, s := range specs {
		data, err := s.JSON()
		if err != nil {
			return nil, fmt.Errorf("simclient: scenario %d: %w", i, err)
		}
		raws[i] = data
	}
	return json.Marshal(struct {
		Scenarios []json.RawMessage `json:"scenarios"`
	}{raws})
}

var _ mobisim.CellRunner = (*Runner)(nil)
