package simclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// scriptedServer runs a canned sequence of responses for POST /v1/jobs
// and records what the client sent.
type scriptedServer struct {
	t *testing.T

	mu       sync.Mutex
	submits  int
	statuses int
	idemKeys []string
	script   []func(w http.ResponseWriter, r *http.Request)
	status   func(w http.ResponseWriter, r *http.Request)
	result   func(w http.ResponseWriter, r *http.Request)
}

func (s *scriptedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
		s.idemKeys = append(s.idemKeys, r.Header.Get("Idempotency-Key"))
		i := s.submits
		s.submits++
		if i >= len(s.script) {
			i = len(s.script) - 1
		}
		s.script[i](w, r)
	case r.Method == http.MethodGet && s.result != nil && r.URL.Path != "" &&
		len(r.URL.Path) > len("/result") && r.URL.Path[len(r.URL.Path)-len("/result"):] == "/result":
		s.result(w, r)
	case r.Method == http.MethodGet && s.status != nil:
		s.statuses++
		s.status(w, r)
	default:
		http.NotFound(w, r)
	}
}

func respond429(retryAfter string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"job queue full"}`)
	}
}

func respondAccepted(id string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(JobStatus{ID: id, State: StateQueued})
	}
}

// testClient wires a client whose jitter records every computed delay
// and sleeps for none of it — the backoff schedule becomes observable
// and the test instant.
func testClient(url string, delays *[]time.Duration) *Client {
	var mu sync.Mutex
	return &Client{
		BaseURL:      url,
		MaxAttempts:  5,
		BaseDelay:    100 * time.Millisecond,
		MaxDelay:     5 * time.Second,
		PollInterval: time.Millisecond,
		Jitter: func(d time.Duration) time.Duration {
			mu.Lock()
			*delays = append(*delays, d)
			mu.Unlock()
			return 0
		},
	}
}

// TestSubmitHonorsRetryAfter pins the 429 contract: a daemon-supplied
// Retry-After is a floor the client always waits out. The injected
// jitter sees only the backoff component — never the server's price,
// which is added on top unjittered — so a jitter that collapses to 0
// still leaves the mandated wait in place.
func TestSubmitHonorsRetryAfter(t *testing.T) {
	srv := &scriptedServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		respond429("2"),
		respond429("1"),
		respondAccepted("j-1"),
	}}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var delays []time.Duration
	c := testClient(ts.URL, &delays)
	start := time.Now()
	st, err := c.Submit(context.Background(), []byte(`{"matrix":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j-1" {
		t.Errorf("submitted job id %q", st.ID)
	}
	if srv.submits != 3 {
		t.Errorf("submits: %d, want 3", srv.submits)
	}
	// Jitter input is the pure backoff schedule (100ms, 200ms)...
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(delays) != 2 || delays[0] != want[0] || delays[1] != want[1] {
		t.Errorf("jitter saw %v, want backoff %v (Retry-After must never pass through jitter)", delays, want)
	}
	// ...and the floors (2s + 1s) are slept regardless of the jitter
	// having returned 0 for the backoff component.
	if elapsed := time.Since(start); elapsed < 3*time.Second {
		t.Errorf("retried after %s, want >= 3s (Retry-After floors jittered away)", elapsed)
	}
}

// TestSleepRetryAfterIsFloor is the unit-level pin of the same fix: a
// jitter collapsing the backoff to zero cannot shorten the wait below
// the server-supplied Retry-After, and without a Retry-After the
// jittered backoff is the whole wait.
func TestSleepRetryAfterIsFloor(t *testing.T) {
	var saw []time.Duration
	c := &Client{
		BaseDelay: 10 * time.Millisecond,
		Jitter: func(d time.Duration) time.Duration {
			saw = append(saw, d)
			return 0
		},
	}
	start := time.Now()
	if err := c.sleep(context.Background(), 0, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("slept %s, want >= the 50ms Retry-After floor", elapsed)
	}
	start = time.Now()
	if err := c.sleep(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("slept %s with zero jitter and no Retry-After, want ~0", elapsed)
	}
	if len(saw) != 2 || saw[0] != 10*time.Millisecond || saw[1] != 10*time.Millisecond {
		t.Errorf("jitter saw %v, want the 10ms backoff component twice", saw)
	}
}

// TestSubmitBacksOffExponentially pins the no-Retry-After schedule:
// doubling from BaseDelay, capped at MaxDelay, and a terminal error
// carrying the daemon's last answer after MaxAttempts.
func TestSubmitBacksOffExponentially(t *testing.T) {
	srv := &scriptedServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		respond429(""),
	}}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var delays []time.Duration
	c := testClient(ts.URL, &delays)
	c.MaxDelay = 400 * time.Millisecond
	_, err := c.Submit(context.Background(), []byte(`{"matrix":{}}`))
	if err == nil {
		t.Fatal("sustained 429 must eventually fail")
	}
	if srv.submits != 5 {
		t.Errorf("submits: %d, want MaxAttempts=5", srv.submits)
	}
	want := []time.Duration{100, 200, 400, 400}
	if len(delays) != len(want) {
		t.Fatalf("delays %v, want 4 backoff steps", delays)
	}
	for i, w := range want {
		if delays[i] != w*time.Millisecond {
			t.Errorf("delay[%d] = %v, want %v", i, delays[i], w*time.Millisecond)
		}
	}
}

// TestSubmitSendsIdempotencyKey pins the envelope-hash header: the
// exact FNV-1a 64 of the body, stable across resubmissions.
func TestSubmitSendsIdempotencyKey(t *testing.T) {
	srv := &scriptedServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		respond429("0"),
		respondAccepted("j-1"),
	}}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var delays []time.Duration
	c := testClient(ts.URL, &delays)
	envelope := []byte(`{"matrix":{"x":1}}`)
	if _, err := c.Submit(context.Background(), envelope); err != nil {
		t.Fatal(err)
	}
	want := EnvelopeHash(envelope)
	if len(srv.idemKeys) != 2 || srv.idemKeys[0] != want || srv.idemKeys[1] != want {
		t.Errorf("idempotency keys %v, want [%s %s]", srv.idemKeys, want, want)
	}
}

// TestRunResubmitsAfterJobLoss pins the crash-recovery client flow: a
// job that vanishes mid-poll (daemon restarted without a journal) is
// resubmitted idempotently and the second job's result is returned.
func TestRunResubmitsAfterJobLoss(t *testing.T) {
	resultBody := []byte(`{"schema":"x"}` + "\n")
	srv := &scriptedServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		respondAccepted("j-lost"),
		respondAccepted("j-2"),
	}}
	srv.status = func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/jobs/j-lost" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"unknown job"}`)
			return
		}
		json.NewEncoder(w).Encode(JobStatus{ID: "j-2", State: StateDone})
	}
	srv.result = func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write(resultBody)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var delays []time.Duration
	c := testClient(ts.URL, &delays)
	body, st, err := c.Run(context.Background(), []byte(`{"matrix":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(resultBody) {
		t.Errorf("result body %q, want %q", body, resultBody)
	}
	if st.ID != "j-2" {
		t.Errorf("final job %q, want j-2", st.ID)
	}
	if srv.submits != 2 {
		t.Errorf("submits: %d, want 2 (resubmission after loss)", srv.submits)
	}
}

// TestRunSurfacesJobFailure pins that a job failing on its own terms
// is an immediate error, not a retry.
func TestRunSurfacesJobFailure(t *testing.T) {
	srv := &scriptedServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		respondAccepted("j-1"),
	}}
	srv.status = func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(JobStatus{ID: "j-1", State: StateFailed, Error: "boom"})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var delays []time.Duration
	c := testClient(ts.URL, &delays)
	_, st, err := c.Run(context.Background(), []byte(`{"matrix":{}}`))
	if err == nil {
		t.Fatal("failed job must error")
	}
	if st == nil || st.State != StateFailed {
		t.Errorf("status %+v, want failed", st)
	}
	if srv.submits != 1 {
		t.Errorf("submits: %d, want 1 (no retry on job failure)", srv.submits)
	}
}

// TestStreamResumesWithLastEventID pins the SSE resume contract: a
// stream dropped mid-feed is resumed from the last seen id, the
// reconnect carries Last-Event-ID, and the resumed events continue
// gap-free to the terminal event.
func TestStreamResumesWithLastEventID(t *testing.T) {
	events := []string{
		"id: 1\nevent: job\ndata: {\"state\":\"running\"}\n\n",
		"id: 2\nevent: cell\ndata: {\"index\":0}\n\n",
		"id: 3\nevent: cell\ndata: {\"index\":1}\n\n",
		"id: 4\nevent: end\ndata: {\"state\":\"done\"}\n\n",
	}
	var lastEventIDs []string
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs/j-1/events", func(w http.ResponseWriter, r *http.Request) {
		lastEventIDs = append(lastEventIDs, r.Header.Get("Last-Event-ID"))
		w.Header().Set("Content-Type", "text/event-stream")
		from := 0
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			fmt.Sscanf(v, "%d", &from)
		}
		if from == 0 {
			// First connection: two events, then the connection dies.
			fmt.Fprint(w, events[0], events[1])
			return
		}
		for _, ev := range events[from:] {
			fmt.Fprint(w, ev)
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL)
	var got []int
	lastID, err := c.Stream(context.Background(), "j-1", 0, func(ev Event) error {
		got = append(got, ev.ID)
		return nil
	})
	if err == nil {
		t.Fatal("truncated stream must return an error")
	}
	if lastID != 2 {
		t.Fatalf("lastID after drop: %d, want 2", lastID)
	}
	lastID, err = c.Stream(context.Background(), "j-1", lastID, func(ev Event) error {
		got = append(got, ev.ID)
		return nil
	})
	if err != nil {
		t.Fatalf("resumed stream: %v", err)
	}
	if lastID != 4 {
		t.Errorf("lastID after resume: %d, want 4", lastID)
	}
	if len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Errorf("event ids %v, want gap-free [1 2 3 4]", got)
	}
	if len(lastEventIDs) != 2 || lastEventIDs[0] != "" || lastEventIDs[1] != "2" {
		t.Errorf("Last-Event-ID headers %v, want [\"\" \"2\"]", lastEventIDs)
	}
}

// TestRetryAfterParsing pins both Retry-After forms.
func TestRetryAfterParsing(t *testing.T) {
	resp := &http.Response{Header: http.Header{}}
	if d := retryAfter(resp); d != 0 {
		t.Errorf("absent header: %v, want 0", d)
	}
	resp.Header.Set("Retry-After", "3")
	if d := retryAfter(resp); d != 3*time.Second {
		t.Errorf("delta-seconds: %v, want 3s", d)
	}
	resp.Header.Set("Retry-After", time.Now().Add(10*time.Second).UTC().Format(http.TimeFormat))
	if d := retryAfter(resp); d <= 8*time.Second || d > 10*time.Second {
		t.Errorf("http-date: %v, want ~10s", d)
	}
	resp.Header.Set("Retry-After", "garbage")
	if d := retryAfter(resp); d != 0 {
		t.Errorf("garbage header: %v, want 0", d)
	}
}
