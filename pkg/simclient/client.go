// Package simclient is the public Go client for the simd daemon's
// /v1 job API: submission, status polling, result retrieval and SSE
// streaming, wrapped in the retry discipline a crash-safe daemon
// expects of its callers — context-aware exponential backoff with
// full jitter, Retry-After honored on 429/503 backpressure, and
// idempotent resubmission keyed by the request envelope hash so a
// retry after a daemon crash attaches to the recovered job instead
// of running a duplicate.
//
// The client defines its own wire types mirroring the daemon's JSON
// contract; it does not import the daemon, so client binaries carry
// none of the simulation engine.
package simclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Job states, mirroring the daemon's JobState values.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus mirrors the daemon's job-status JSON body.
type JobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cells     int    `json:"cells"`
	Completed int    `json:"completed"`
	CacheHits int    `json:"cache_hits"`
	Computed  int    `json:"computed"`
	Deduped   int    `json:"deduped"`
	Error     string `json:"error,omitempty"`
	CreatedAt string `json:"created_at,omitempty"`
	StartedAt string `json:"started_at,omitempty"`
	DoneAt    string `json:"done_at,omitempty"`
}

// Terminal reports whether the state is final.
func (s *JobStatus) Terminal() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCanceled
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("simclient: daemon returned %d: %s", e.Status, e.Message)
}

// IsNotFound reports whether err is a 404 — after an unjournaled
// daemon restart, a pre-crash job id answers 404 and the caller's
// move is idempotent resubmission.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// Client talks to one simd daemon. The zero value is not usable; use
// New, or set BaseURL and leave the rest zero for defaults. Clients
// are safe for concurrent use.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds each operation's retry loop (default 10).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms); attempt
	// n waits jitter(min(MaxDelay, BaseDelay<<n)), plus the daemon's
	// Retry-After when one was sent — the server's price is a floor the
	// jitter can only add to, never undercut.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5s).
	MaxDelay time.Duration
	// PollInterval spaces Wait's status polls (default 50ms).
	PollInterval time.Duration
	// Jitter maps a computed delay to the slept delay. The default is
	// full jitter — uniform in [0, d) — which decorrelates a thundering
	// herd of retrying clients. Tests inject a deterministic one.
	Jitter func(d time.Duration) time.Duration
	// Logf, when set, receives one line per retry decision.
	Logf func(format string, args ...any)
}

// New returns a client for the daemon at baseURL with default retry
// policy.
func New(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 10
}

func (c *Client) baseDelay() time.Duration {
	if c.BaseDelay > 0 {
		return c.BaseDelay
	}
	return 100 * time.Millisecond
}

func (c *Client) maxDelay() time.Duration {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 5 * time.Second
}

func (c *Client) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 50 * time.Millisecond
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// EnvelopeHash is the idempotency key of a submission: FNV-1a 64 over
// the raw envelope bytes, rendered %016x — the same derivation the
// daemon journals, computed independently so the client stays free of
// server imports.
func EnvelopeHash(envelope []byte) string {
	h := fnv.New64a()
	_, _ = h.Write(envelope)
	return fmt.Sprintf("%016x", h.Sum64())
}

// backoffDelay computes attempt n's pre-jitter delay.
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.baseDelay()
	for i := 0; i < attempt && d < c.maxDelay(); i++ {
		d *= 2
	}
	if d > c.maxDelay() {
		d = c.maxDelay()
	}
	return d
}

// sleep waits out one backoff step, honoring ctx. Only the backoff
// component is jittered; a server-supplied retryAfter is a floor added
// on top, never jittered away — a daemon that said "retry after 2s"
// named its price, and a client that jitters below it just re-hits the
// 429 it was warned about. Jittering upward from the floor still
// decorrelates a thundering herd of equally-priced clients.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter time.Duration) error {
	d := c.backoffDelay(attempt)
	if c.Jitter != nil {
		d = c.Jitter(d)
	} else if d > 0 {
		d = time.Duration(rand.Int63n(int64(d) + 1))
	}
	if retryAfter > 0 {
		d += retryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfter parses a Retry-After header: delta-seconds or HTTP-date.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// retryableStatus reports whether a status code is worth retrying:
// backpressure (429), a draining or restarting daemon (503), and
// transient gateway failures in front of one (502, 504).
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// apiError drains a non-2xx response into an APIError, decoding the
// daemon's {"error": ...} body when present.
func apiError(resp *http.Response) *APIError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	msg := string(bytes.TrimSpace(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}

// do issues one request with the retry loop: retryable statuses and
// transport errors back off and go again, everything else returns.
// The response body is open on success; the caller closes it.
func (c *Client) do(ctx context.Context, method, path string, body []byte, header http.Header) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt-1, retryAfterOf(lastErr)); err != nil {
				return nil, err
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return nil, err
		}
		for k, vs := range header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			c.logf("simclient: %s %s attempt %d: %v", method, path, attempt+1, err)
			continue
		}
		if retryableStatus(resp.StatusCode) {
			ra := retryAfter(resp)
			ae := apiError(resp) // drains and closes semantics: body fully read
			resp.Body.Close()
			lastErr = &retryableError{err: ae, retryAfter: ra}
			c.logf("simclient: %s %s attempt %d: %d (retry-after %s)", method, path, attempt+1, ae.Status, ra)
			continue
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("simclient: no attempts made")
	}
	var re *retryableError
	if errors.As(lastErr, &re) {
		lastErr = re.err
	}
	return nil, fmt.Errorf("simclient: %s %s: giving up after %d attempts: %w", method, path, c.maxAttempts(), lastErr)
}

// retryableError carries the daemon's Retry-After through the loop.
type retryableError struct {
	err        error
	retryAfter time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func retryAfterOf(err error) time.Duration {
	var re *retryableError
	if errors.As(err, &re) {
		return re.retryAfter
	}
	return 0
}

// Submit posts a job envelope. The Idempotency-Key header carries the
// envelope hash, so resubmitting identical bytes attaches to the live
// (or journal-recovered) job instead of starting a duplicate.
func (c *Client) Submit(ctx context.Context, envelope []byte) (*JobStatus, error) {
	header := http.Header{
		"Content-Type":    {"application/json"},
		"Idempotency-Key": {EnvelopeHash(envelope)},
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", envelope, header)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("simclient: decode submit response: %w", err)
	}
	return &st, nil
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, jobID string) (*JobStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("simclient: decode status: %w", err)
	}
	return &st, nil
}

// Wait polls until the job reaches a terminal state.
func (c *Client) Wait(ctx context.Context, jobID string) (*JobStatus, error) {
	t := time.NewTicker(c.pollInterval())
	defer t.Stop()
	for {
		st, err := c.Status(ctx, jobID)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Result fetches a finished job's result body, byte-verbatim.
func (c *Client) Result(ctx context.Context, jobID string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID+"/result", nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Run is the whole resilient flow: submit, wait, fetch the result. A
// job lost to a daemon crash (404 on poll, connection failures, or a
// daemon-initiated cancellation) is resubmitted idempotently — the
// result bytes are content-addressed on the daemon side, so the
// eventual body is byte-identical to an uninterrupted run. A job that
// fails on its own terms is returned as an error immediately.
func (c *Client) Run(ctx context.Context, envelope []byte) ([]byte, *JobStatus, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt-1, 0); err != nil {
				return nil, nil, err
			}
			c.logf("simclient: resubmitting after: %v", lastErr)
		}
		st, err := c.Submit(ctx, envelope)
		if err != nil {
			return nil, nil, err
		}
		st, err = c.Wait(ctx, st.ID)
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = err // crash window: job vanished or daemon unreachable
			continue
		}
		switch st.State {
		case StateDone:
			body, rerr := c.Result(ctx, st.ID)
			if rerr != nil {
				if ctx.Err() != nil {
					return nil, nil, ctx.Err()
				}
				lastErr = rerr
				continue
			}
			return body, st, nil
		case StateFailed:
			return nil, st, fmt.Errorf("simclient: job %s failed: %s", st.ID, st.Error)
		default: // canceled by the daemon (shutdown), not by this client
			lastErr = fmt.Errorf("simclient: job %s canceled by daemon", st.ID)
		}
	}
	return nil, nil, fmt.Errorf("simclient: run: giving up after %d attempts: %w", c.maxAttempts(), lastErr)
}
