package simclient

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Event is one server-sent event from a job's /events feed.
type Event struct {
	// ID is the per-job event id (the SSE `id:` field); pass the last
	// one seen as Stream's fromID to resume without gaps.
	ID int
	// Type is "job", "cell", "sample" or "end".
	Type string
	// Data is the JSON payload.
	Data []byte
}

// Stream subscribes to a job's SSE feed from fromID (0 = from the
// beginning) and calls fn for each event with ID > fromID. It returns
// the last event id seen alongside any error; a nil error means the
// terminal "end" event arrived and the stream is complete.
//
// Stream does not retry internally: a broken stream returns with the
// id to resume from, and the caller picks the resume point — fromID
// against the same daemon instance (the daemon replays retained
// events gap-free), 0 after a daemon restart (event ids restart with
// the recovered job's fresh feed, so a stale high-water mark would
// filter live events).
func (c *Client) Stream(ctx context.Context, jobID string, fromID int, fn func(Event) error) (int, error) {
	lastID := fromID
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return lastID, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if fromID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(fromID))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return lastID, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return lastID, apiError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var ev Event
	var data []byte
	flush := func() error {
		if ev.Type == "" && len(data) == 0 {
			return nil
		}
		ev.Data = data
		if ev.ID > lastID {
			lastID = ev.ID
			if err := fn(ev); err != nil {
				return err
			}
		}
		done := ev.Type == "end"
		ev, data = Event{}, nil
		if done {
			return errStreamDone
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			if err := flush(); err != nil {
				if err == errStreamDone {
					return lastID, nil
				}
				return lastID, err
			}
			continue
		}
		field, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			if n, err := strconv.Atoi(value); err == nil {
				ev.ID = n
			}
		case "event":
			ev.Type = value
		case "data":
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, value...)
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return lastID, ctx.Err()
		}
		return lastID, err
	}
	return lastID, fmt.Errorf("simclient: event stream for job %s ended without a terminal event", jobID)
}

// errStreamDone is flush's internal "end seen" signal.
var errStreamDone = fmt.Errorf("simclient: stream done")
