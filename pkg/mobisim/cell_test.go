package mobisim

import (
	"bytes"
	"context"
	"testing"
)

// TestCellsByteIdentity is the external-executor contract test:
// running every cell of ExpandCells independently and folding the
// metrics through AggregateCells must reproduce RunSweep's output byte
// for byte, raw results included — the invariant the simd daemon's
// cache correctness rests on.
func TestCellsByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	m := Matrix{
		Platforms:  []string{PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{GovAppAware, GovNone},
		LimitsC:    []float64{58, 70},
		Replicates: 2,
		DurationS:  2,
		BaseSeed:   3,
	}
	want, err := RunSweep(context.Background(), m, SweepConfig{Workers: 2, IncludeRaw: true})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := encodeSweep(t, want)

	cells, err := ExpandCells(m)
	if err != nil {
		t.Fatal(err)
	}
	metrics := make([]map[string]float64, len(cells))
	for i, c := range cells {
		eng, err := New(c.Spec, WithoutRecording())
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		metrics[i] = eng.Metrics()
	}
	got, err := AggregateCells(cells, metrics, true)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, gotCSV := encodeSweep(t, got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("cell-wise JSON differs from RunSweep:\nwant:\n%s\ngot:\n%s", wantJSON, gotJSON)
	}
	if !bytes.Equal(wantCSV, gotCSV) {
		t.Errorf("cell-wise CSV differs from RunSweep")
	}
}

// TestExpandCellsShape pins the expansion invariants services depend
// on: specs are ModelOnlyBML (matching the sweep executors), keys
// match Spec.CellKey, and the limit axis collapses for limit-agnostic
// arms exactly like RunSweep's expansion.
func TestExpandCellsShape(t *testing.T) {
	m := Matrix{
		Platforms:  []string{PlatformOdroidXU3},
		Workloads:  []string{"3dmark"},
		Governors:  []string{GovAppAware, GovNone},
		LimitsC:    []float64{58, 64, 70},
		Replicates: 2,
		DurationS:  1,
		BaseSeed:   1,
	}
	cells, err := ExpandCells(m)
	if err != nil {
		t.Fatal(err)
	}
	// appaware: 3 limits x 2 replicates; none: limit axis collapsed,
	// 1 x 2 replicates.
	if want := 3*2 + 2; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	seen := make(map[uint64]bool)
	for i, c := range cells {
		if !c.Spec.ModelOnlyBML {
			t.Errorf("cell %d: spec not ModelOnlyBML", i)
		}
		key, err := c.Spec.CellKey()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if key != c.Key {
			t.Errorf("cell %d: stored key %016x != spec key %016x", i, c.Key, key)
		}
		if seen[key] {
			t.Errorf("cell %d: duplicate key %016x in a single expansion", i, key)
		}
		seen[key] = true
	}
}

// TestCellForScenario pins the standalone-cell contract: the key
// addresses the submitted spec (ModelOnlyBML untouched), so the same
// scenario always maps to the same key and a different one does not.
func TestCellForScenario(t *testing.T) {
	sc := Scenario{Platform: PlatformOdroidXU3, Workload: "3dmark", Governor: GovAppAware, LimitC: 60, DurationS: 1, Seed: 5}
	c1, err := CellForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Spec.ModelOnlyBML {
		t.Error("CellForScenario must not force ModelOnlyBML")
	}
	c2, err := CellForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Key != c2.Key {
		t.Errorf("same scenario, different keys: %016x vs %016x", c1.Key, c2.Key)
	}
	sc.LimitC = 61
	c3, err := CellForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Key == c1.Key {
		t.Error("different LimitC produced the same cell key")
	}
	if _, err := CellForScenario(Scenario{Platform: "no-such-device", Workload: "3dmark", DurationS: 1}); err == nil {
		t.Error("unknown platform: want error")
	}
}

// TestCellsDegenerateMatrices drives the degenerate matrix shapes —
// a single-cell matrix, an omitted limits axis (platform default), and
// an all-limit-agnostic matrix whose limit axis fully collapses —
// through the cell-wise path and pins each byte-identical to RunSweep.
func TestCellsDegenerateMatrices(t *testing.T) {
	cases := []struct {
		name      string
		m         Matrix
		wantCells int
	}{
		{
			name: "single cell",
			m: Matrix{
				Platforms: []string{PlatformOdroidXU3},
				Workloads: []string{"3dmark"},
				Governors: []string{GovNone},
				DurationS: 1,
				BaseSeed:  1,
			},
			wantCells: 1,
		},
		{
			name: "omitted limits axis, limit-aware arm",
			m: Matrix{
				Platforms:  []string{PlatformOdroidXU3},
				Workloads:  []string{"3dmark+bml"},
				Governors:  []string{GovAppAware},
				Replicates: 2,
				DurationS:  1,
				BaseSeed:   2,
			},
			wantCells: 2, // 1 default limit x 2 replicates
		},
		{
			name: "limit axis fully collapsed",
			m: Matrix{
				Platforms: []string{PlatformNexus6P},
				Workloads: []string{"paper.io"},
				Governors: []string{GovNone, GovStepwise},
				LimitsC:   []float64{50, 60, 70},
				DurationS: 1,
				BaseSeed:  3,
			},
			wantCells: 2, // both arms limit-agnostic: 3 limits -> 1 each
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := RunSweep(context.Background(), tc.m, SweepConfig{Workers: 2, IncludeRaw: true})
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, wantCSV := encodeSweep(t, want)

			cells, err := ExpandCells(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			if len(cells) != tc.wantCells {
				t.Fatalf("got %d cells, want %d", len(cells), tc.wantCells)
			}
			metrics := make([]map[string]float64, len(cells))
			for i, c := range cells {
				eng, err := New(c.Spec, WithoutRecording())
				if err != nil {
					t.Fatalf("cell %d: %v", i, err)
				}
				if err := eng.Run(); err != nil {
					t.Fatalf("cell %d: %v", i, err)
				}
				metrics[i] = eng.Metrics()
			}
			got, err := AggregateCells(cells, metrics, true)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, gotCSV := encodeSweep(t, got)
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Errorf("cell-wise JSON differs from RunSweep:\nwant:\n%s\ngot:\n%s", wantJSON, gotJSON)
			}
			if !bytes.Equal(wantCSV, gotCSV) {
				t.Errorf("cell-wise CSV differs from RunSweep")
			}
		})
	}
}

// TestAggregateCellsLengthMismatch pins the arity check.
func TestAggregateCellsLengthMismatch(t *testing.T) {
	m := Matrix{
		Platforms: []string{PlatformOdroidXU3}, Workloads: []string{"3dmark"},
		Governors: []string{GovNone}, Replicates: 2, DurationS: 1, BaseSeed: 1,
	}
	cells, err := ExpandCells(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AggregateCells(cells, make([]map[string]float64, len(cells)-1), false); err == nil {
		t.Error("mismatched metrics length: want error")
	}
}
