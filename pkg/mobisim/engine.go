package mobisim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/appaware"
	"repro/internal/daq"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Aliases re-exporting the simulator types that appear in the facade's
// API, so external callers never have to name an internal package.
type (
	// Platform is the device model (presets via LookupPlatform).
	Platform = platform.Platform
	// DomainID identifies a frequency domain.
	DomainID = platform.DomainID
	// Rail identifies a power rail.
	Rail = power.Rail
	// Series is an append-only simulation time series.
	Series = trace.Series
	// App is the workload model interface.
	App = workload.App
	// BML is the basicmath-large background task.
	BML = workload.BML
	// AppAwareGovernor is the paper's application-aware controller.
	AppAwareGovernor = appaware.Governor
	// DAQChannel is the modeled external power-measurement instrument.
	DAQChannel = daq.Channel
	// DAQConfig parameterizes a DAQChannel.
	DAQConfig = daq.Config
)

// Frequency domain identifiers.
const (
	DomLittle = platform.DomLittle
	DomBig    = platform.DomBig
	DomGPU    = platform.DomGPU
)

// Power rail identifiers.
const (
	RailLittle = power.RailLittle
	RailBig    = power.RailBig
	RailMem    = power.RailMem
	RailGPU    = power.RailGPU
)

// Domains returns every frequency domain.
func Domains() []DomainID { return platform.DomainIDs() }

// Rails returns every power rail.
func Rails() []Rail { return power.Rails() }

// DefaultDAQConfig mirrors the paper's instrument: 1 kHz sampling with
// milliwatt-class resolution and small noise.
func DefaultDAQConfig() DAQConfig { return daq.DefaultConfig() }

// Metric names Engine.Metrics reports. Not every scenario produces
// every metric: frame-rate metrics follow the foreground workload, and
// MetricBMLIterations appears only for "+bml" mixes.
const (
	MetricPeakC         = "peak_c"
	MetricAvgPowerW     = "avg_power_w"
	MetricMigrations    = "migrations"
	MetricGT1FPS        = "gt1_fps"
	MetricGT2FPS        = "gt2_fps"
	MetricMedianFPS     = "median_fps"
	MetricScore         = "score"
	MetricBMLIterations = "bml_iterations"
)

// Engine is a runnable simulation built from a Scenario by New. It
// wraps the internal engine with spec-aware accessors and the
// (series, ok) trace lookups CLI formatters rely on.
type Engine struct {
	spec  Scenario
	sim   *sim.Engine
	plat  *platform.Platform
	apps  []sim.AppSpec
	fg    workload.App
	bml   *workload.BML
	aware *appaware.Governor
	daq   *daq.Channel
}

// Spec returns the (normalized) scenario the engine was built from.
func (e *Engine) Spec() Scenario { return e.spec }

// Run advances the simulation by the scenario's DurationS. Calling it
// again continues the run for another DurationS. Run executes on the
// engine's batched step path: zero steady-state allocations per step,
// which is what keeps sweep throughput bounded by arithmetic rather
// than the garbage collector.
func (e *Engine) Run() error { return e.sim.Run(e.spec.DurationS) }

// RunFor advances the simulation by durationS seconds, for callers
// interleaving simulation with inspection.
func (e *Engine) RunFor(durationS float64) error { return e.sim.Run(durationS) }

// RunSteps advances the simulation by exactly n fixed integration
// steps, bypassing duration-to-step rounding — the precise variant of
// RunFor for callers that think in steps (differential harnesses,
// lockstep co-simulation).
func (e *Engine) RunSteps(n int) error { return e.sim.RunSteps(n) }

// NowS returns the current simulation time in seconds.
func (e *Engine) NowS() float64 { return e.sim.Now() }

// Snapshot serializes the engine's complete simulation state into a
// versioned binary blob. A fresh engine built from the same scenario
// can Restore it and continue bitwise-identically to an uninterrupted
// run — the primitive behind the sweep executor's prefix warm-start.
func (e *Engine) Snapshot() ([]byte, error) { return e.sim.Snapshot() }

// Restore replaces the engine's simulation state with a Snapshot blob
// taken from an engine of the same scenario. Restoring state captured
// under a different spec is not detected here beyond structural checks;
// use Scenario.CellKey/PrefixKey to key blobs by content.
func (e *Engine) Restore(blob []byte) error { return e.sim.Restore(blob) }

// Sim exposes the underlying simulation engine for advanced inspection
// (scheduler, meter, per-task power attribution).
func (e *Engine) Sim() *sim.Engine { return e.sim }

// Platform returns the device model.
func (e *Engine) Platform() *Platform { return e.plat }

// Foreground returns the scenario's foreground workload.
func (e *Engine) Foreground() App { return e.fg }

// BackgroundBML returns the basicmath-large background task, nil
// unless the workload mix carries the "+bml" suffix.
func (e *Engine) BackgroundBML() *BML { return e.bml }

// AppAware returns the application-aware controller, nil unless the
// scenario's thermal arm is GovAppAware.
func (e *Engine) AppAware() *AppAwareGovernor { return e.aware }

// DAQ returns the attached measurement channel, nil unless the engine
// was built WithDAQ.
func (e *Engine) DAQ() *DAQChannel { return e.daq }

// MaxTempSeenC returns the hottest true node temperature observed, °C.
func (e *Engine) MaxTempSeenC() float64 { return thermal.ToCelsius(e.sim.MaxTempSeenK()) }

// NodeTempSeries returns the true temperature trace (°C) of a node; ok
// is false for unknown names or when recording is disabled.
func (e *Engine) NodeTempSeries(name string) (*Series, bool) {
	if rec := e.sim.Recording(); rec != nil {
		return rec.NodeTempSeries(name)
	}
	return nil, false
}

// MaxTempSeries returns the hottest-node temperature trace (°C); ok is
// false when recording is disabled.
func (e *Engine) MaxTempSeries() (*Series, bool) {
	if rec := e.sim.Recording(); rec != nil {
		return rec.MaxTempSeries(), true
	}
	return nil, false
}

// SensorSeries returns the sensed-temperature trace (°C); ok is false
// when recording is disabled.
func (e *Engine) SensorSeries() (*Series, bool) {
	if rec := e.sim.Recording(); rec != nil {
		return rec.SensorSeries(), true
	}
	return nil, false
}

// TotalPowerSeries returns the total power trace (W); ok is false when
// recording is disabled.
func (e *Engine) TotalPowerSeries() (*Series, bool) {
	if rec := e.sim.Recording(); rec != nil {
		return rec.TotalPowerSeries(), true
	}
	return nil, false
}

// RailPowerSeries returns one rail's power trace (W); ok is false for
// unknown rails or when recording is disabled.
func (e *Engine) RailPowerSeries(r Rail) (*Series, bool) {
	if rec := e.sim.Recording(); rec != nil {
		return rec.RailPowerSeries(r)
	}
	return nil, false
}

// FreqSeries returns one domain's frequency trace (Hz); ok is false
// for unknown domains or when recording is disabled.
func (e *Engine) FreqSeries(id DomainID) (*Series, bool) {
	if rec := e.sim.Recording(); rec != nil {
		return rec.FreqSeries(id)
	}
	return nil, false
}

// Metrics extracts the run's scalar metric set: the thermal and power
// aggregates every run reports plus workload-specific scores. All
// values come from constant-memory accumulators, so Metrics works
// identically with recording disabled.
func (e *Engine) Metrics() map[string]float64 {
	m := map[string]float64{
		MetricPeakC:     e.MaxTempSeenC(),
		MetricAvgPowerW: e.sim.Meter().AveragePowerW(),
	}
	if e.aware != nil {
		m[MetricMigrations] = float64(e.aware.Migrations())
	} else {
		m[MetricMigrations] = float64(e.sim.Scheduler().Migrations())
	}
	switch fg := e.fg.(type) {
	case *workload.ThreeDMark:
		m[MetricGT1FPS] = fg.GT1FPS()
		m[MetricGT2FPS] = fg.GT2FPS()
	case *workload.Nenamark:
		m[MetricScore] = fg.Score()
		m[MetricMedianFPS] = fg.MedianFPS()
	case *workload.FrameApp:
		m[MetricMedianFPS] = fg.MedianFPS()
	}
	if e.bml != nil {
		m[MetricBMLIterations] = float64(e.bml.Iterations())
	}
	return m
}

// Summary condenses a run into the numbers the paper reports.
type Summary struct {
	// DurationS is the simulated time so far.
	DurationS float64
	// MaxTempC is the hottest true node temperature seen.
	MaxTempC float64
	// SensorEndC is the final platform-sensor reading.
	SensorEndC float64
	// AvgPowerW is the run's average total power.
	AvgPowerW float64
	// RailShares is each rail's fraction of total energy.
	RailShares map[Rail]float64
	// AppFPS maps app name to median FPS (frame apps only).
	AppFPS map[string]float64
	// Migrations counts application-aware victim migrations.
	Migrations int
}

// Summary computes the run summary so far.
func (e *Engine) Summary() Summary {
	sum := Summary{
		DurationS:  e.sim.Now(),
		MaxTempC:   e.MaxTempSeenC(),
		SensorEndC: thermal.ToCelsius(e.sim.SensorTempK()),
		AvgPowerW:  e.sim.Meter().AveragePowerW(),
		RailShares: e.sim.Meter().Shares(),
		AppFPS:     make(map[string]float64),
	}
	for _, a := range e.apps {
		if fr, ok := a.App.(workload.FPSReporter); ok {
			sum.AppFPS[a.App.Name()] = fr.MedianFPS()
		}
	}
	if e.aware != nil {
		sum.Migrations = e.aware.Migrations()
	}
	return sum
}

// String renders the summary as a short human-readable block with a
// deterministic line order.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ran %.0fs  max %.1f°C  sensor %.1f°C  avg %.2f W\n",
		s.DurationS, s.MaxTempC, s.SensorEndC, s.AvgPowerW)
	for _, r := range Rails() {
		fmt.Fprintf(&b, "  rail %-6s %5.1f%%\n", r, s.RailShares[r]*100)
	}
	names := make([]string, 0, len(s.AppFPS))
	for name := range s.AppFPS {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if fps := s.AppFPS[name]; !math.IsNaN(fps) {
			fmt.Fprintf(&b, "  app %-14s median %.1f FPS\n", name, fps)
		}
	}
	if s.Migrations > 0 {
		fmt.Fprintf(&b, "  appaware migrations: %d\n", s.Migrations)
	}
	return b.String()
}
