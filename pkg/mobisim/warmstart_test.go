package mobisim

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/sweep"
)

// TestWarmStartByteIdentity is the warm executor's contract test: for
// matrices covering the fork path (limits the sentinel crosses early),
// the never-acts full-copy path, and mixed governor arms, the warm
// sweep output must be byte-identical to the cold output — scalar and
// batched, including raw per-cell metrics.
func TestWarmStartByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	matrices := map[string]Matrix{
		// Sentinel acts at ~0.2s (limit 52): every other member forks
		// from an early checkpoint and simulates most of the run.
		"fork-early": {
			Platforms:  []string{PlatformOdroidXU3},
			Workloads:  []string{"3dmark+bml"},
			Governors:  []string{GovAppAware},
			LimitsC:    []float64{52, 58, 64, 70},
			Replicates: 2,
			DurationS:  3,
			BaseSeed:   1,
		},
		// No member ever acts within the horizon: the full-copy path,
		// where members share the sentinel's metrics without simulating.
		"never-acts": {
			Platforms:  []string{PlatformOdroidXU3},
			Workloads:  []string{"3dmark+bml"},
			Governors:  []string{GovAppAware},
			LimitsC:    []float64{64, 67, 70},
			Replicates: 2,
			DurationS:  2,
			BaseSeed:   7,
		},
		// Warm groups interleaved with limit-agnostic cold cells, plus a
		// second platform whose appaware cells group separately.
		"mixed-arms": {
			Platforms:  []string{PlatformOdroidXU3, PlatformNexus6P},
			Workloads:  []string{"paper.io+bml"},
			Governors:  []string{GovAppAware, GovNone},
			LimitsC:    []float64{52, 58},
			Replicates: 1,
			DurationS:  2,
			BaseSeed:   3,
		},
	}
	for name, m := range matrices {
		m := m
		t.Run(name, func(t *testing.T) {
			run := func(cfg SweepConfig) *SweepOutput {
				t.Helper()
				cfg.IncludeRaw = true
				out, err := RunSweep(context.Background(), m, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			coldJSON, coldCSV := encodeSweep(t, run(SweepConfig{Workers: 2}))

			warmJSON, warmCSV := encodeSweep(t, run(SweepConfig{Workers: 2, WarmStart: true}))
			if !bytes.Equal(coldJSON, warmJSON) {
				t.Errorf("warm scalar JSON differs from cold:\ncold:\n%s\nwarm:\n%s", coldJSON, warmJSON)
			}
			if !bytes.Equal(coldCSV, warmCSV) {
				t.Errorf("warm scalar CSV differs from cold")
			}

			warmBatchJSON, warmBatchCSV := encodeSweep(t, run(SweepConfig{Workers: 2, WarmStart: true, BatchWidth: DefaultBatchWidth}))
			if !bytes.Equal(coldJSON, warmBatchJSON) {
				t.Errorf("warm batched JSON differs from cold:\ncold:\n%s\nwarm:\n%s", coldJSON, warmBatchJSON)
			}
			if !bytes.Equal(coldCSV, warmBatchCSV) {
				t.Errorf("warm batched CSV differs from cold")
			}

			// Worker-count independence holds on the warm path too.
			serialJSON, _ := encodeSweep(t, run(SweepConfig{Workers: 1, WarmStart: true, BatchWidth: 3}))
			if !bytes.Equal(coldJSON, serialJSON) {
				t.Errorf("warm output depends on worker count or batch width")
			}
		})
	}
}

// TestWarmStartPlan pins the grouping policy: limit-aware cells group
// across the limits axis per replicate, limit-agnostic and singleton
// cells stay cold, and every expansion position is covered exactly
// once.
func TestWarmStartPlan(t *testing.T) {
	m := Matrix{
		Platforms:  []string{PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{GovAppAware, GovIPA},
		LimitsC:    []float64{55, 60, 65},
		Replicates: 2,
		DurationS:  1,
		BaseSeed:   1,
	}
	m.Normalize()
	scenarios, err := expandScenarios(m.sweepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	// 2 replicates * 3 limits appaware + 2 replicates * 1 collapsed ipa.
	if len(scenarios) != 8 {
		t.Fatalf("expansion has %d scenarios, want 8", len(scenarios))
	}
	plan, err := planWarmStart(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.groups) != 2 {
		t.Fatalf("plan has %d warm groups, want 2 (one per replicate)", len(plan.groups))
	}
	covered := make(map[int]int)
	for g, pos := range plan.groupPos {
		if len(pos) != 3 {
			t.Errorf("group %d has %d members, want 3 (the limits axis)", g, len(pos))
		}
		seed := scenarios[pos[0]].Seed
		for _, p := range pos {
			covered[p]++
			if !limitAware(scenarios[p].Governor) {
				t.Errorf("limit-agnostic scenario %d landed in a warm group", p)
			}
			if scenarios[p].Seed != seed {
				t.Errorf("group %d mixes seeds %d and %d", g, seed, scenarios[p].Seed)
			}
		}
	}
	for _, p := range plan.coldPos {
		covered[p]++
		if limitAware(scenarios[p].Governor) {
			t.Errorf("appaware scenario %d (limit %g) fell off the warm plan", p, scenarios[p].LimitC)
		}
	}
	for i := range scenarios {
		if covered[i] != 1 {
			t.Errorf("scenario %d covered %d times, want exactly once", i, covered[i])
		}
	}

	// A single-limit matrix yields singleton prefix groups: everything
	// stays cold, and warm-start degenerates to the cold executor.
	single := m
	single.LimitsC = []float64{55}
	single.Normalize()
	scenarios, err = expandScenarios(single.sweepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	plan, err = planWarmStart(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.groups) != 0 {
		t.Errorf("single-limit matrix formed %d warm groups, want 0", len(plan.groups))
	}
	if len(plan.coldPos) != len(scenarios) {
		t.Errorf("cold set has %d cells, want all %d", len(plan.coldPos), len(scenarios))
	}
}

// TestWarmStartCancellation checks the warm path honors context
// cancellation like the cold pools.
func TestWarmStartCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := Matrix{
		Platforms: []string{PlatformOdroidXU3},
		Workloads: []string{"3dmark+bml"},
		Governors: []string{GovAppAware},
		LimitsC:   []float64{55, 60},
		DurationS: 1,
		BaseSeed:  1,
	}
	if _, err := RunSweep(ctx, m, SweepConfig{WarmStart: true}); err == nil {
		t.Error("canceled context should abort the warm sweep")
	}
}

// TestGroupPoolContract pins the group pool's error handling: empty
// groups and mismatched metric counts are rejected.
func TestGroupPoolContract(t *testing.T) {
	ctx := context.Background()
	sc := sweep.Scenario{Platform: "p", Workload: "w", Governor: "g", DurationS: 1}
	ok := func(_ context.Context, group []sweep.Scenario) ([]map[string]float64, error) {
		return make([]map[string]float64, len(group)), nil
	}
	pool := &sweep.GroupPool{RunFunc: ok}
	if _, err := pool.Run(ctx, [][]sweep.Scenario{{}}); err == nil {
		t.Error("empty group should be rejected")
	}
	short := func(context.Context, []sweep.Scenario) ([]map[string]float64, error) {
		return nil, nil
	}
	pool = &sweep.GroupPool{RunFunc: short}
	if _, err := pool.Run(ctx, [][]sweep.Scenario{{sc}}); err == nil {
		t.Error("metric-count mismatch should be rejected")
	}
	pool = &sweep.GroupPool{}
	if _, err := pool.Run(ctx, [][]sweep.Scenario{{sc}}); err == nil {
		t.Error("missing RunFunc should be rejected")
	}
}
