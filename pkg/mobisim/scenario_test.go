package mobisim

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseScenarioRoundTripIsStable(t *testing.T) {
	minimal := []byte(`{
	  "platform": "nexus6p",
	  "workload": "paper.io",
	  "duration_s": 30,
	  "seed": 7
	}`)
	s1, err := ParseScenario(minimal)
	if err != nil {
		t.Fatal(err)
	}
	// Defaulting resolved the platform-dependent fields.
	if s1.Governor != GovStepwise {
		t.Errorf("governor defaulted to %q, want %q", s1.Governor, GovStepwise)
	}
	if s1.PrewarmC != NexusPrewarmC {
		t.Errorf("prewarm defaulted to %v, want %v", s1.PrewarmC, NexusPrewarmC)
	}
	j1, err := s1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseScenario(j1)
	if err != nil {
		t.Fatalf("re-parse of encoded scenario failed: %v\n%s", err, j1)
	}
	if s2 != s1 {
		t.Errorf("decode(encode(s)) != s:\nfirst:  %+v\nsecond: %+v", s1, s2)
	}
	j2, err := s2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("encode is not byte-stable:\nfirst:\n%s\nsecond:\n%s", j1, j2)
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	_, err := ParseScenario([]byte(`{
	  "platform": "nexus6p",
	  "workload": "paper.io",
	  "duration_s": 30,
	  "tharmal_limit": 55
	}`))
	if err == nil || !strings.Contains(err.Error(), "tharmal_limit") {
		t.Errorf("typo'd field should be rejected by name, got %v", err)
	}
}

func TestParseScenarioRejectsTrailingData(t *testing.T) {
	_, err := ParseScenario([]byte(`{"platform":"nexus6p","workload":"paper.io","duration_s":1}{"x":1}`))
	if err == nil {
		t.Error("trailing JSON document should be rejected")
	}
}

func TestScenarioValidate(t *testing.T) {
	ok := Scenario{Platform: PlatformOdroidXU3, Workload: "nenamark+bml", Governor: GovAppAware, LimitC: 58, DurationS: 5, Seed: 1}
	ok.Normalize()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	odroidDefaults := Scenario{Platform: PlatformOdroidXU3, Workload: "3dmark", DurationS: 5}
	odroidDefaults.Normalize()
	if odroidDefaults.Governor != GovIPA || odroidDefaults.PrewarmC != OdroidPrewarmC {
		t.Errorf("odroid defaults wrong: %+v", odroidDefaults)
	}
	// Normalize must be idempotent for round-trip stability.
	twice := odroidDefaults
	twice.Normalize()
	if twice != odroidDefaults {
		t.Errorf("Normalize is not idempotent: %+v vs %+v", twice, odroidDefaults)
	}
	// A negative prewarm (start at ambient) survives normalization.
	ambient := Scenario{Platform: PlatformNexus6P, Workload: "amazon", PrewarmC: -1, DurationS: 5}
	ambient.Normalize()
	if ambient.PrewarmC != -1 {
		t.Errorf("negative prewarm should be preserved, got %v", ambient.PrewarmC)
	}
}

func TestLoadScenarioFromTestdata(t *testing.T) {
	// The checked-in spec is also the CI smoke scenario for cmd/mobsim.
	s, err := LoadScenario("../../testdata/nexus_paperio.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.Platform != PlatformNexus6P || s.Workload != "paper.io" {
		t.Errorf("unexpected spec contents: %+v", s)
	}
}
