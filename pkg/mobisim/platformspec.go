package mobisim

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"repro/internal/platform"
)

// PlatformSpec is the declarative JSON platform description: thermal
// nodes and couplings, per-domain OPP ladders and power models, sensor
// and memory-rail parameters. The two built-in presets are themselves
// embedded PlatformSpec files; user specs compile through exactly the
// same path, so a spec-defined device is a first-class citizen of
// scenarios, sweeps and the batched executor.
//
// Use a spec either inline (Scenario.PlatformSpec) or by registering it
// (RegisterPlatform) so scenarios and matrices can reference its name.
type PlatformSpec = platform.SpecFile

// ParsePlatformSpec decodes, normalizes and validates a JSON platform
// spec. Unknown fields are rejected; validation is exactly as strict as
// the compiler, so an accepted spec always builds (the fuzz harness
// pins this).
func ParsePlatformSpec(data []byte) (PlatformSpec, error) {
	return platform.ParseSpecFile(data)
}

// LoadPlatformSpec reads and parses a platform spec file.
func LoadPlatformSpec(path string) (PlatformSpec, error) {
	return platform.LoadSpecFile(path)
}

// platformRegistry holds user-registered platform specs by name. The
// sweep pool reads it concurrently (every worker resolves platforms);
// registration is expected at setup time but is safe at any point.
var platformRegistry = struct {
	sync.RWMutex
	specs map[string]PlatformSpec
}{specs: make(map[string]PlatformSpec)}

// RegisterPlatform validates spec and registers it under its name, so
// scenarios and sweep matrices can reference the name exactly like a
// built-in. Built-in names are reserved. Re-registering an identical
// spec is a no-op; re-registering a different spec under a taken name
// is an error (silent redefinition would make two sweeps with the same
// platform column incomparable).
func RegisterPlatform(spec PlatformSpec) error {
	// Clone before normalizing: Normalize writes through the spec's
	// slices, and the caller keeps ownership of theirs.
	spec = spec.Clone()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return err
	}
	if isBuiltinPlatform(spec.Name) {
		return fmt.Errorf("mobisim: platform name %q is reserved by a built-in preset", spec.Name)
	}
	platformRegistry.Lock()
	defer platformRegistry.Unlock()
	if prev, ok := platformRegistry.specs[spec.Name]; ok {
		if !reflect.DeepEqual(prev, spec) {
			return fmt.Errorf("mobisim: platform %q is already registered with a different spec", spec.Name)
		}
		return nil
	}
	platformRegistry.specs[spec.Name] = spec.Clone()
	return nil
}

// RegisterPlatformFile loads, parses and registers a platform spec
// file, returning the registered name — the one-call path CLI flags
// use.
func RegisterPlatformFile(path string) (string, error) {
	spec, err := LoadPlatformSpec(path)
	if err != nil {
		return "", err
	}
	if err := RegisterPlatform(spec); err != nil {
		return "", err
	}
	return spec.Name, nil
}

// RegisteredPlatforms returns the names of user-registered platform
// specs, sorted.
func RegisteredPlatforms() []string {
	platformRegistry.RLock()
	defer platformRegistry.RUnlock()
	names := make([]string, 0, len(platformRegistry.specs))
	for name := range platformRegistry.specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// registeredSpec returns a registered spec by name.
func registeredSpec(name string) (PlatformSpec, bool) {
	platformRegistry.RLock()
	defer platformRegistry.RUnlock()
	spec, ok := platformRegistry.specs[name]
	if !ok {
		return PlatformSpec{}, false
	}
	return spec.Clone(), true
}

// platformRegistered reports whether name is in the registry, without
// cloning the spec — this runs per sweep cell via Scenario.Validate.
func platformRegistered(name string) bool {
	platformRegistry.RLock()
	defer platformRegistry.RUnlock()
	_, ok := platformRegistry.specs[name]
	return ok
}

// isBuiltinPlatform reports whether name is a compiled-in preset.
func isBuiltinPlatform(name string) bool {
	return name == PlatformNexus6P || name == PlatformOdroidXU3
}

// platformKnown reports whether name resolves to a built-in or
// registered platform.
func platformKnown(name string) bool {
	return isBuiltinPlatform(name) || platformRegistered(name)
}
