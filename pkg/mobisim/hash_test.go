package mobisim

import (
	"os"
	"path/filepath"
	"testing"
)

// hashTestScenario is the fixed scenario behind the key-stability pin.
func hashTestScenario() Scenario {
	return Scenario{
		Platform:  PlatformOdroidXU3,
		Workload:  "3dmark+bml",
		Governor:  GovAppAware,
		LimitC:    64,
		DurationS: 10,
		Seed:      1,
	}
}

// TestContentKeyStability pins the exact key values of a reference
// scenario. These keys are part of the persisted-artifact contract
// (warm-start grouping, future result caches): any change to the
// canonical byte form must bump the domain strings to v2 and update
// this pin deliberately.
func TestContentKeyStability(t *testing.T) {
	const (
		wantCell   = uint64(0x1af655631b986254)
		wantPrefix = uint64(0x31d681066a8d52b4)
	)
	sc := hashTestScenario()
	cell, err := sc.CellKey()
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := sc.PrefixKey()
	if err != nil {
		t.Fatal(err)
	}
	if cell != wantCell {
		t.Errorf("CellKey = %#x, want %#x (schema drift? bump domain to v2)", cell, wantCell)
	}
	if prefix != wantPrefix {
		t.Errorf("PrefixKey = %#x, want %#x (schema drift? bump domain to v2)", prefix, wantPrefix)
	}
	if cell == prefix {
		t.Errorf("cell and prefix keys collide: %#x", cell)
	}
}

// TestContentKeyNormalizationInvariance checks that spelling-level
// differences — labels, raw vs normalized form — do not affect identity.
func TestContentKeyNormalizationInvariance(t *testing.T) {
	base := hashTestScenario()
	baseCell := mustCellKey(t, base)
	basePrefix := mustPrefixKey(t, base)

	labeled := base
	labeled.Name = "some sweep label"
	if got := mustCellKey(t, labeled); got != baseCell {
		t.Errorf("label changed CellKey: %#x != %#x", got, baseCell)
	}

	// Normalize fills CPUGovernor/PrewarmC/Governor defaults; a
	// pre-normalized spelling must hash identically to the raw one.
	normalized := base
	normalized.Normalize()
	if got := mustCellKey(t, normalized); got != baseCell {
		t.Errorf("pre-normalized scenario changed CellKey: %#x != %#x", got, baseCell)
	}
	if got := mustPrefixKey(t, normalized); got != basePrefix {
		t.Errorf("pre-normalized scenario changed PrefixKey: %#x != %#x", got, basePrefix)
	}

	// An explicitly spelled default must also agree.
	explicit := base
	explicit.CPUGovernor = CPUGovStock
	explicit.PrewarmC = OdroidPrewarmC
	if got := mustCellKey(t, explicit); got != baseCell {
		t.Errorf("explicit defaults changed CellKey: %#x != %#x", got, baseCell)
	}
}

// TestPrefixKeyCollapsesLimitAndDuration checks the prefix/cell split:
// the prefix key ignores exactly the limit and duration axes, the cell
// key distinguishes them, and everything else (seed, workload) splits
// both keys.
func TestPrefixKeyCollapsesLimitAndDuration(t *testing.T) {
	base := hashTestScenario()
	baseCell := mustCellKey(t, base)
	basePrefix := mustPrefixKey(t, base)

	limit := base
	limit.LimitC = 70
	if got := mustPrefixKey(t, limit); got != basePrefix {
		t.Errorf("LimitC changed PrefixKey: %#x != %#x", got, basePrefix)
	}
	if got := mustCellKey(t, limit); got == baseCell {
		t.Errorf("LimitC did not change CellKey: %#x", got)
	}

	duration := base
	duration.DurationS = 20
	if got := mustPrefixKey(t, duration); got != basePrefix {
		t.Errorf("DurationS changed PrefixKey: %#x != %#x", got, basePrefix)
	}
	if got := mustCellKey(t, duration); got == baseCell {
		t.Errorf("DurationS did not change CellKey: %#x", got)
	}

	seed := base
	seed.Seed = 2
	if got := mustPrefixKey(t, seed); got == basePrefix {
		t.Errorf("Seed did not change PrefixKey: %#x (replicates must form separate prefix groups)", got)
	}

	workload := base
	workload.Workload = "3dmark"
	if got := mustPrefixKey(t, workload); got == basePrefix {
		t.Errorf("Workload did not change PrefixKey: %#x", got)
	}
}

// TestContentKeyInlineVsRegistered checks the content-addressing core:
// the same device reached through an inline spec and through a
// registered name hashes identically, and a genuinely different device
// does not.
func TestContentKeyInlineVsRegistered(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "platforms", "tablet.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParsePlatformSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterPlatform(spec); err != nil {
		t.Fatal(err)
	}

	byName := Scenario{Platform: spec.Name, Workload: "gen-bursty", Governor: GovAppAware, LimitC: 60, DurationS: 5, Seed: 3}
	inline := byName
	inline.Platform = ""
	inline.PlatformSpec = &spec

	if got, want := mustCellKey(t, inline), mustCellKey(t, byName); got != want {
		t.Errorf("inline spec CellKey %#x != registered-name CellKey %#x", got, want)
	}
	if got, want := mustPrefixKey(t, inline), mustPrefixKey(t, byName); got != want {
		t.Errorf("inline spec PrefixKey %#x != registered-name PrefixKey %#x", got, want)
	}

	other := byName
	other.Platform = PlatformNexus6P
	if mustCellKey(t, other) == mustCellKey(t, byName) {
		t.Errorf("different platforms produced the same CellKey")
	}
}

// TestContentKeyUnknownPlatform checks that an unresolvable platform
// reference errors instead of silently hashing the bare name.
func TestContentKeyUnknownPlatform(t *testing.T) {
	sc := hashTestScenario()
	sc.Platform = "no-such-device"
	if _, err := sc.CellKey(); err == nil {
		t.Errorf("CellKey accepted unknown platform")
	}
	if _, err := sc.PrefixKey(); err == nil {
		t.Errorf("PrefixKey accepted unknown platform")
	}
}

func mustCellKey(t *testing.T, s Scenario) uint64 {
	t.Helper()
	k, err := s.CellKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func mustPrefixKey(t *testing.T, s Scenario) uint64 {
	t.Helper()
	k, err := s.PrefixKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}
