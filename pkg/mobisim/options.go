package mobisim

import (
	"fmt"

	"repro/internal/daq"
	"repro/internal/sim"
)

// Option adjusts engine construction without changing what the
// scenario simulates: observers, instrumentation, and overrides of the
// timing knobs. Options take precedence over the matching Scenario
// fields.
type Option func(*buildConfig) error

// buildConfig accumulates option effects before New assembles the
// sim.Config.
type buildConfig struct {
	stepS            float64
	tracePeriodS     float64
	taskWindowS      float64
	observers        []sim.Observer
	disableRecording bool
	daq              *daq.Channel
}

// WithStep overrides the integration step in seconds.
func WithStep(stepS float64) Option {
	return func(bc *buildConfig) error {
		if stepS <= 0 {
			return fmt.Errorf("mobisim: WithStep needs a positive step, got %v", stepS)
		}
		bc.stepS = stepS
		return nil
	}
}

// WithTracePeriod overrides the observer/trace sampling period in
// seconds.
func WithTracePeriod(periodS float64) Option {
	return func(bc *buildConfig) error {
		if periodS <= 0 {
			return fmt.Errorf("mobisim: WithTracePeriod needs a positive period, got %v", periodS)
		}
		bc.tracePeriodS = periodS
		return nil
	}
}

// WithTaskWindow overrides the per-task power averaging window in
// seconds.
func WithTaskWindow(windowS float64) Option {
	return func(bc *buildConfig) error {
		if windowS <= 0 {
			return fmt.Errorf("mobisim: WithTaskWindow needs a positive window, got %v", windowS)
		}
		bc.taskWindowS = windowS
		return nil
	}
}

// WithObserver registers a streaming observer; it receives one Sample
// per trace period. May be repeated to attach several observers.
func WithObserver(o Observer) Option {
	return func(bc *buildConfig) error {
		if o == nil {
			return fmt.Errorf("mobisim: WithObserver needs a non-nil observer")
		}
		bc.observers = append(bc.observers, o)
		return nil
	}
}

// WithoutRecording disables the built-in RecordingSink, making the run
// constant-memory: the engine's series lookups then report ok=false,
// and only observers attached WithObserver see samples. Metrics and
// Summary are unaffected — and, because the engine publishes samples
// regardless, so are the simulated dynamics.
func WithoutRecording() Option {
	return func(bc *buildConfig) error {
		bc.disableRecording = true
		return nil
	}
}

// WithDAQ attaches a modeled external power-measurement instrument
// sampling total platform power on its own clock; read it back with
// Engine.DAQ.
func WithDAQ(name string, cfg DAQConfig) Option {
	return func(bc *buildConfig) error {
		ch, err := daq.New(name, cfg)
		if err != nil {
			return err
		}
		bc.daq = ch
		return nil
	}
}
