// Package mobisim is the public facade of the mobile-SoC thermal
// simulator: the one stable API surface over the internal engine that
// closes the paper's simulation loop (workload → CPUfreq governor →
// scheduler → power model → RC thermal network → thermal governor).
//
// The package has three coordinated layers:
//
//   - Declarative scenarios. A Scenario is a JSON-serializable
//     description of one simulation — platform, workload mix, thermal
//     arm, duration, seed — with Validate, defaulting, and stable
//     round-trip encoding. New workload mixes are spec files, not code
//     changes. A Matrix is the sweep-shaped counterpart: per-axis value
//     lists that expand into many scenarios.
//
//   - Engine construction. New(spec, opts...) assembles a runnable
//     Engine from a spec, with functional options (WithStep, WithDAQ,
//     WithObserver, WithoutRecording, ...) for the knobs that are
//     engine concerns rather than scenario identity.
//
//   - Streaming observers. The engine publishes a Sample (temperatures,
//     per-rail power, frequencies) once per trace period to every
//     registered Observer, making long runs constant-memory. The
//     classic getter-based traces are one built-in observer, the
//     RecordingSink, enabled by default and removable with
//     WithoutRecording.
//
// Quickstart:
//
//	spec, err := mobisim.ParseScenario([]byte(`{
//	    "platform": "nexus6p",
//	    "workload": "paper.io",
//	    "governor": "stepwise",
//	    "duration_s": 30,
//	    "seed": 1
//	}`))
//	if err != nil { ... }
//	eng, err := mobisim.New(spec)
//	if err != nil { ... }
//	if err := eng.Run(); err != nil { ... }
//	fmt.Println(eng.Summary())
//	fmt.Println(eng.Metrics()["peak_c"])
//
// Same-seed runs are bitwise deterministic, and observers never
// influence dynamics, so any combination of sinks reproduces identical
// metrics.
package mobisim
