package mobisim

// Fuzz harnesses for the declarative spec layer. Run continuously with
//
//	go test ./pkg/mobisim -fuzz FuzzParseScenario
//	go test ./pkg/mobisim -fuzz FuzzParseMatrix
//
// Under plain `go test` the seed corpus (f.Add plus any checked-in
// crashers under testdata/fuzz/) runs as regression tests. The
// harnesses pin three contracts:
//
//  1. No input can panic the decoder.
//  2. Decode → encode → decode converges after one pass (Normalize is
//     idempotent and JSON rendering is stable).
//  3. Validation parity: any spec ParseScenario/ParseMatrix accepts is
//     also accepted by the engine builder — Validate rejects everything
//     the engine would later reject, so sweeps cannot die mid-run on a
//     spec error.

import (
	"reflect"
	"testing"
)

// scenarioSeedCorpus covers the accepted shapes, every rejection path
// the validator owns, and historical near-miss inputs (engine-only
// rejections that Validate must now catch).
var scenarioSeedCorpus = []string{
	`{"platform":"nexus6p","workload":"paper.io","duration_s":10}`,
	`{"platform":"odroid-xu3","workload":"3dmark+bml","governor":"appaware","limit_c":60,"duration_s":120,"seed":3}`,
	`{"platform":"odroid-xu3","workload":"nenamark","governor":"ipa","duration_s":5,"cpu_governor":"ondemand"}`,
	`{"platform":"nexus6p","workload":"stickman-hook","governor":"none","duration_s":1,"prewarm_c":-1}`,
	`{"platform":"nexus6p","workload":"amazon","duration_s":2,"step_s":0.002,"trace_period_s":0.2,"task_window_s":2}`,
	// Rejected: unknown axis values, malformed JSON, trailing data.
	`{"platform":"pixel9","workload":"paper.io","duration_s":1}`,
	`{"platform":"nexus6p","workload":"quake","duration_s":1}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1}{"x":1}`,
	`{"platform":`,
	`null`,
	`[]`,
	// Engine-rejection parity cases: these decode but must fail Validate
	// because sim.New or appaware.New would refuse them.
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"step_s":0.5}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"step_s":0.01,"trace_period_s":0.001}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"task_window_s":1e-9}`,
	`{"platform":"odroid-xu3","workload":"3dmark","governor":"appaware","limit_c":-400,"duration_s":1}`,
	`{"platform":"odroid-xu3","workload":"3dmark","governor":"stepwise","duration_s":1}`,
	`{"platform":"nexus6p","workload":"paper.io","governor":"ipa","duration_s":1}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1e999}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1e30}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"step_s":1e-9}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"task_window_s":3000,"step_s":0.001}`,
}

func FuzzParseScenario(f *testing.F) {
	for _, seed := range scenarioSeedCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseScenario(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		// Accepted specs are normalized: re-validation must agree.
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed scenario fails re-validation: %v\nspec: %+v", err, s)
		}
		// Round trip: encode → decode reproduces the same spec.
		out, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted scenario fails to encode: %v\nspec: %+v", err, s)
		}
		s2, err := ParseScenario(out)
		if err != nil {
			t.Fatalf("re-decode of accepted scenario rejected: %v\njson: %s", err, out)
		}
		if s2 != s {
			t.Fatalf("scenario round trip drifted:\nfirst:  %+v\nsecond: %+v", s, s2)
		}
		// Validation parity: the engine builder must accept what
		// Validate accepted.
		if _, err := New(s); err != nil {
			t.Fatalf("Validate accepted a spec the engine rejects: %v\nspec: %+v", err, s)
		}
	})
}

// matrixSeedCorpus mirrors the scenario corpus at the sweep level,
// including expansion-bound and per-cell rejection cases.
var matrixSeedCorpus = []string{
	`{"platforms":["odroid-xu3"],"workloads":["3dmark+bml"],"governors":["appaware"],"limits_c":[55,65],"duration_s":2,"base_seed":1}`,
	`{"platforms":["nexus6p","odroid-xu3"],"workloads":["paper.io","amazon"],"governors":["none"],"duration_s":1,"replicates":2}`,
	`{"platforms":["odroid-xu3"],"workloads":["nenamark"],"governors":["ipa","none"],"limits_c":[60],"duration_s":3}`,
	// Rejected: unknown values, empty axes, malformed JSON.
	`{"platforms":[],"workloads":["3dmark"],"governors":["none"],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["quake"],"governors":["none"],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["psychic"],"duration_s":1}`,
	`{"platforms":`,
	// Engine-rejection parity: per-cell incompatibilities and hostile
	// expansion sizes must fail Validate, not the sweep.
	`{"platforms":["nexus6p"],"workloads":["paper.io"],"governors":["ipa"],"duration_s":1}`,
	`{"platforms":["nexus6p","odroid-xu3"],"workloads":["paper.io"],"governors":["stepwise"],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["appaware"],"limits_c":[-400],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["none"],"duration_s":1,"replicates":1000000000}`,
}

func FuzzParseMatrix(f *testing.F) {
	for _, seed := range matrixSeedCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMatrix(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parsed matrix fails re-validation: %v\nmatrix: %+v", err, m)
		}
		out, err := m.JSON()
		if err != nil {
			t.Fatalf("accepted matrix fails to encode: %v\nmatrix: %+v", err, m)
		}
		m2, err := ParseMatrix(out)
		if err != nil {
			t.Fatalf("re-decode of accepted matrix rejected: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(m2, m) {
			t.Fatalf("matrix round trip drifted:\nfirst:  %+v\nsecond: %+v", m, m2)
		}
		// The expansion must succeed and stay within bounds, and every
		// expanded cell must itself build: probe one scenario per cell
		// group by building the first expansion point's engine-facing
		// spec through Validate (New for every cell would make the
		// harness quadratic; per-cell Validate is what RunSweep relies
		// on, and FuzzParseScenario covers Validate→New parity).
		if n := m.ExpandedSize(); n <= 0 || n > MaxMatrixScenarios {
			t.Fatalf("accepted matrix has out-of-bounds expansion %d\nmatrix: %+v", n, m)
		}
	})
}
