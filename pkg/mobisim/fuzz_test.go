package mobisim

// Fuzz harnesses for the declarative spec layer. Run continuously with
//
//	go test ./pkg/mobisim -fuzz FuzzParseScenario
//	go test ./pkg/mobisim -fuzz FuzzParseMatrix
//	go test ./pkg/mobisim -fuzz FuzzParseObjective
//	go test ./pkg/mobisim -fuzz FuzzParsePlatformSpec
//
// Under plain `go test` the seed corpus (f.Add plus any checked-in
// crashers under testdata/fuzz/) runs as regression tests. The
// harnesses pin three contracts:
//
//  1. No input can panic the decoder.
//  2. Decode → encode → decode converges after one pass (Normalize is
//     idempotent and JSON rendering is stable).
//  3. Validation parity: any spec ParseScenario/ParseMatrix accepts is
//     also accepted by the engine builder — Validate rejects everything
//     the engine would later reject, so sweeps cannot die mid-run on a
//     spec error.

import (
	"reflect"
	"testing"
)

// scenarioSeedCorpus covers the accepted shapes, every rejection path
// the validator owns, and historical near-miss inputs (engine-only
// rejections that Validate must now catch).
var scenarioSeedCorpus = []string{
	`{"platform":"nexus6p","workload":"paper.io","duration_s":10}`,
	`{"platform":"odroid-xu3","workload":"3dmark+bml","governor":"appaware","limit_c":60,"duration_s":120,"seed":3}`,
	`{"platform":"odroid-xu3","workload":"nenamark","governor":"ipa","duration_s":5,"cpu_governor":"ondemand"}`,
	`{"platform":"nexus6p","workload":"stickman-hook","governor":"none","duration_s":1,"prewarm_c":-1}`,
	`{"platform":"nexus6p","workload":"amazon","duration_s":2,"step_s":0.002,"trace_period_s":0.2,"task_window_s":2}`,
	// Rejected: unknown axis values, malformed JSON, trailing data.
	`{"platform":"pixel9","workload":"paper.io","duration_s":1}`,
	`{"platform":"nexus6p","workload":"quake","duration_s":1}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1}{"x":1}`,
	`{"platform":`,
	`null`,
	`[]`,
	// Engine-rejection parity cases: these decode but must fail Validate
	// because sim.New or appaware.New would refuse them.
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"step_s":0.5}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"step_s":0.01,"trace_period_s":0.001}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"task_window_s":1e-9}`,
	`{"platform":"odroid-xu3","workload":"3dmark","governor":"appaware","limit_c":-400,"duration_s":1}`,
	`{"platform":"odroid-xu3","workload":"3dmark","governor":"stepwise","duration_s":1}`,
	`{"platform":"nexus6p","workload":"paper.io","governor":"ipa","duration_s":1}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1e999}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1e30}`,
	// Non-finite spec floats (JSON has no NaN literal; huge exponents
	// collapse to +Inf): every float field must reject them, including
	// ones only consumed downstream of Normalize.
	`{"platform":"nexus6p","workload":"paper.io","governor":"none","duration_s":1,"limit_c":1e999}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"prewarm_c":1e999}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"trace_period_s":1e999}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"task_window_s":1e999}`,
	`{"platform":"nexus6p","workload":"gen-bursty","governor":"none","duration_s":1,"generator":{"kind":"bursty","touch_rate_per_s":1e999}}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"step_s":1e-9}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"task_window_s":3000,"step_s":0.001}`,
	// Generated workloads: default knobs, tuned knobs, and rejections
	// (kind mismatch, knobs on a non-generated workload, bad bounds).
	`{"platform":"nexus6p","workload":"gen-bursty","governor":"none","duration_s":2}`,
	`{"platform":"odroid-xu3","workload":"gen-ramp+bml","governor":"appaware","duration_s":2,"generator":{"kind":"ramp","horizon_s":30,"cpu_cycles_per_frame_max":4e7,"gpu_cycles_per_frame_max":8e6}}`,
	`{"platform":"nexus6p","workload":"gen-periodic","governor":"none","duration_s":1,"generator":{"kind":"bursty"}}`,
	`{"platform":"nexus6p","workload":"gen-bursty","governor":"none","duration_s":1,"generator":{"kind":"bursty","burst_ratio":0.9}}`,
	`{"platform":"nexus6p","workload":"gen-perturb","governor":"none","duration_s":1,"generator":{"kind":"perturb","base":[]}}`,
	`{"platform":"nexus6p","workload":"paper.io","governor":"none","duration_s":1,"generator":{"kind":"bursty"}}`,
	`{"platform":"nexus6p","workload":"gen-bursty","governor":"none","duration_s":1,"generator":{"kind":"bursty","burst_ratio":7}}`,
	`{"platform":"nexus6p","workload":"gen-perturb","governor":"none","duration_s":1,"generator":{"kind":"perturb","horizon_s":1e18,"phase_mean_s":1e-9}}`,
	// Inline platform specs: a self-contained scenario, a name
	// mismatch, a reserved name, and an invalid (NaN-free but broken)
	// network.
	`{"workload":"gen-bursty","governor":"none","duration_s":2,"platform_spec":` + fuzzPlatformSpecJSON + `}`,
	`{"platform":"something-else","workload":"paper.io","governor":"none","duration_s":1,"platform_spec":` + fuzzPlatformSpecJSON + `}`,
	`{"platform":"nexus6p","workload":"paper.io","duration_s":1,"platform_spec":{"name":"nexus6p","thermal_limit_c":50,"nodes":[{"name":"die","capacitance_j_per_k":1,"g_ambient_w_per_k":0.1}],"domains":[],"sensor":{"node":"die"}}}`,
	`{"workload":"paper.io","governor":"none","duration_s":1,"platform_spec":{"name":"island","thermal_limit_c":50,"nodes":[{"name":"die","capacitance_j_per_k":1}],"domains":[],"sensor":{"node":"die"}}}`,
}

// fuzzPlatformSpecJSON is a complete valid platform spec embedded in
// the scenario and platform-spec corpora.
const fuzzPlatformSpecJSON = `{
  "name": "fuzzdie",
  "thermal_limit_c": 50,
  "nodes": [
    {"name": "little", "capacitance_j_per_k": 1.0},
    {"name": "big", "capacitance_j_per_k": 1.5},
    {"name": "gpu", "capacitance_j_per_k": 1.5},
    {"name": "board", "capacitance_j_per_k": 6, "g_ambient_w_per_k": 0.08}
  ],
  "couplings": [
    {"a": "little", "b": "board", "g_w_per_k": 0.5},
    {"a": "big", "b": "board", "g_w_per_k": 0.5},
    {"a": "gpu", "b": "board", "g_w_per_k": 0.5}
  ],
  "domains": [
    {"id": "little", "cores": 4, "ceff_f": 1.5e-10, "idle_w": 0.03, "leak_k": 1e-4,
     "opps": [{"freq_hz": 400000000, "voltage_v": 0.85}, {"freq_hz": 1200000000, "voltage_v": 1.05}]},
    {"id": "big", "cores": 4, "ceff_f": 6e-10, "idle_w": 0.05, "leak_k": 3e-4,
     "opps": [{"freq_hz": 400000000, "voltage_v": 0.9}, {"freq_hz": 1800000000, "voltage_v": 1.2}]},
    {"id": "gpu", "cores": 1, "ceff_f": 2e-9, "idle_w": 0.04, "leak_k": 2e-4,
     "opps": [{"freq_hz": 200000000, "voltage_v": 0.85}, {"freq_hz": 600000000, "voltage_v": 1.05}]}
  ],
  "sensor": {"node": "big"}
}`

func FuzzParseScenario(f *testing.F) {
	for _, seed := range scenarioSeedCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseScenario(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		// Accepted specs are normalized: re-validation must agree.
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed scenario fails re-validation: %v\nspec: %+v", err, s)
		}
		// Round trip: encode → decode reproduces the same spec.
		// (DeepEqual, not ==: inline platform specs and generator knobs
		// live behind pointers.)
		out, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted scenario fails to encode: %v\nspec: %+v", err, s)
		}
		s2, err := ParseScenario(out)
		if err != nil {
			t.Fatalf("re-decode of accepted scenario rejected: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(s2, s) {
			t.Fatalf("scenario round trip drifted:\nfirst:  %+v\nsecond: %+v", s, s2)
		}
		// Validation parity: the engine builder must accept what
		// Validate accepted.
		if _, err := New(s); err != nil {
			t.Fatalf("Validate accepted a spec the engine rejects: %v\nspec: %+v", err, s)
		}
	})
}

// matrixSeedCorpus mirrors the scenario corpus at the sweep level,
// including expansion-bound and per-cell rejection cases.
var matrixSeedCorpus = []string{
	`{"platforms":["odroid-xu3"],"workloads":["3dmark+bml"],"governors":["appaware"],"limits_c":[55,65],"duration_s":2,"base_seed":1}`,
	`{"platforms":["nexus6p","odroid-xu3"],"workloads":["paper.io","amazon"],"governors":["none"],"duration_s":1,"replicates":2}`,
	`{"platforms":["odroid-xu3"],"workloads":["nenamark"],"governors":["ipa","none"],"limits_c":[60],"duration_s":3}`,
	// Rejected: unknown values, empty axes, malformed JSON.
	`{"platforms":[],"workloads":["3dmark"],"governors":["none"],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["quake"],"governors":["none"],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["psychic"],"duration_s":1}`,
	`{"platforms":`,
	// Engine-rejection parity: per-cell incompatibilities and hostile
	// expansion sizes must fail Validate, not the sweep.
	`{"platforms":["nexus6p"],"workloads":["paper.io"],"governors":["ipa"],"duration_s":1}`,
	`{"platforms":["nexus6p","odroid-xu3"],"workloads":["paper.io"],"governors":["stepwise"],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["appaware"],"limits_c":[-400],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["none"],"duration_s":1,"replicates":1000000000}`,
	// Non-finite limits previously slipped through on limit-agnostic
	// matrices: the collapsed probe never examined the raw axis values.
	`{"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["none"],"limits_c":[1e999],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["appaware"],"limits_c":[1e999],"duration_s":1}`,
	`{"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["none"],"duration_s":1e999}`,
}

func FuzzParseMatrix(f *testing.F) {
	for _, seed := range matrixSeedCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMatrix(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parsed matrix fails re-validation: %v\nmatrix: %+v", err, m)
		}
		out, err := m.JSON()
		if err != nil {
			t.Fatalf("accepted matrix fails to encode: %v\nmatrix: %+v", err, m)
		}
		m2, err := ParseMatrix(out)
		if err != nil {
			t.Fatalf("re-decode of accepted matrix rejected: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(m2, m) {
			t.Fatalf("matrix round trip drifted:\nfirst:  %+v\nsecond: %+v", m, m2)
		}
		// The expansion must succeed and stay within bounds, and every
		// expanded cell must itself build: probe one scenario per cell
		// group by building the first expansion point's engine-facing
		// spec through Validate (New for every cell would make the
		// harness quadratic; per-cell Validate is what RunSweep relies
		// on, and FuzzParseScenario covers Validate→New parity).
		if n := m.ExpandedSize(); n <= 0 || n > MaxMatrixScenarios {
			t.Fatalf("accepted matrix has out-of-bounds expansion %d\nmatrix: %+v", n, m)
		}
	})
}

// platformSpecSeedCorpus covers accepted platform specs and every
// rejection family the validator owns: malformed or hostile OPP
// tables, asymmetric/duplicate conductance entries, NaN/Inf fields,
// structural breakage, and malformed JSON.
var platformSpecSeedCorpus = []string{
	fuzzPlatformSpecJSON,
	// Accepted: an explicit empty couplings array (every node couples
	// to ambient directly) — must round-trip despite omitempty.
	`{"name":"flat","thermal_limit_c":50,"couplings":[],"nodes":[{"name":"little","capacitance_j_per_k":1,"g_ambient_w_per_k":0.05},{"name":"big","capacitance_j_per_k":1,"g_ambient_w_per_k":0.05},{"name":"gpu","capacitance_j_per_k":1,"g_ambient_w_per_k":0.05}],"domains":[{"id":"little","cores":2,"ceff_f":1e-10,"opps":[{"freq_hz":500000000,"voltage_v":0.9}]},{"id":"big","cores":2,"ceff_f":5e-10,"opps":[{"freq_hz":1000000000,"voltage_v":1.0}]},{"id":"gpu","cores":1,"ceff_f":2e-9,"opps":[{"freq_hz":400000000,"voltage_v":0.95}]}],"sensor":{"node":"big"}}`,
	// Rejected: malformed OPP tables.
	`{"name":"x","thermal_limit_c":50,"nodes":[{"name":"little","capacitance_j_per_k":1,"g_ambient_w_per_k":0.1},{"name":"big","capacitance_j_per_k":1},{"name":"gpu","capacitance_j_per_k":1}],"domains":[{"id":"little","cores":1,"ceff_f":1e-10,"opps":[]},{"id":"big","cores":1,"ceff_f":1e-10,"opps":[{"freq_hz":1000,"voltage_v":1}]},{"id":"gpu","cores":1,"ceff_f":1e-10,"opps":[{"freq_hz":1000,"voltage_v":1}]}],"sensor":{"node":"big"}}`,
	`{"name":"x","thermal_limit_c":50,"nodes":[{"name":"little","capacitance_j_per_k":1,"g_ambient_w_per_k":0.1},{"name":"big","capacitance_j_per_k":1},{"name":"gpu","capacitance_j_per_k":1}],"domains":[{"id":"little","cores":1,"ceff_f":1e-10,"opps":[{"freq_hz":1000,"voltage_v":1},{"freq_hz":1000,"voltage_v":1.1}]},{"id":"big","cores":1,"ceff_f":1e-10,"opps":[{"freq_hz":1000,"voltage_v":1}]},{"id":"gpu","cores":1,"ceff_f":1e-10,"opps":[{"freq_hz":1000,"voltage_v":1}]}],"sensor":{"node":"big"}}`,
	`{"name":"x","thermal_limit_c":50,"nodes":[{"name":"little","capacitance_j_per_k":1,"g_ambient_w_per_k":0.1},{"name":"big","capacitance_j_per_k":1},{"name":"gpu","capacitance_j_per_k":1}],"domains":[{"id":"little","cores":1,"ceff_f":1e-10,"opps":[{"freq_hz":2000,"voltage_v":1},{"freq_hz":1000,"voltage_v":1.2}]},{"id":"big","cores":1,"ceff_f":1e-10,"opps":[{"freq_hz":1000,"voltage_v":1}]},{"id":"gpu","cores":1,"ceff_f":1e-10,"opps":[{"freq_hz":1000,"voltage_v":1}]}],"sensor":{"node":"big"}}`,
	// Rejected: asymmetric / duplicate conductance entries.
	`{"name":"x","thermal_limit_c":50,"nodes":[{"name":"a","capacitance_j_per_k":1,"g_ambient_w_per_k":0.1},{"name":"b","capacitance_j_per_k":1}],"couplings":[{"a":"a","b":"b","g_w_per_k":0.5},{"a":"b","b":"a","g_w_per_k":0.9}],"domains":[],"sensor":{"node":"a"}}`,
	`{"name":"x","thermal_limit_c":50,"nodes":[{"name":"a","capacitance_j_per_k":1,"g_ambient_w_per_k":0.1},{"name":"b","capacitance_j_per_k":1}],"couplings":[{"a":"a","b":"b","g_w_per_k":0.5},{"a":"a","b":"b","g_w_per_k":0.5}],"domains":[],"sensor":{"node":"a"}}`,
	// Rejected: non-finite fields (JSON has no NaN literal, so the
	// interesting cases are huge exponents collapsing to +Inf).
	`{"name":"x","ambient_c":1e999,"thermal_limit_c":50,"nodes":[{"name":"a","capacitance_j_per_k":1,"g_ambient_w_per_k":0.1}],"domains":[],"sensor":{"node":"a"}}`,
	`{"name":"x","thermal_limit_c":50,"nodes":[{"name":"a","capacitance_j_per_k":1e999,"g_ambient_w_per_k":0.1}],"domains":[],"sensor":{"node":"a"}}`,
	// Rejected: structural breakage.
	`{"name":"x","thermal_limit_c":50,"nodes":[{"name":"a","capacitance_j_per_k":1}],"domains":[],"sensor":{"node":"a"}}`,
	`{"name":"x","thermal_limit_c":-300,"nodes":[{"name":"a","capacitance_j_per_k":1,"g_ambient_w_per_k":0.1}],"domains":[],"sensor":{"node":"a"}}`,
	`{"name":"x","thermal_limit_c":50,"nodes":[{"name":"a","capacitance_j_per_k":1,"g_ambient_w_per_k":0.1}],"domains":[],"sensor":{"node":"ghost"}}`,
	// Rejected: malformed JSON, unknown fields, trailing data.
	`{"name":`,
	`{"name":"x","fan_rpm":9000}`,
	`null`,
	`[]`,
}

// objectiveSeedCorpus covers accepted search specs and the rejection
// families the optimize validator owns: non-finite bounds, empty
// mutation sets, contradictory constraints, unknown metrics/params/
// goals/values, mixed mutation shapes, and malformed JSON.
var objectiveSeedCorpus = []string{
	// Accepted: limit/governor search with a ceiling constraint.
	`{"scenario":{"platform":"odroid-xu3","workload":"gen-bursty+bml","governor":"appaware","duration_s":2,"seed":42},"objective":{"metric":"bml_iterations","goal":"maximize"},"constraints":[{"metric":"peak_c","max":90}],"mutations":[{"param":"limit_c","min":55,"max":75,"step":5},{"param":"cpu_governor","values":["stock","performance"]}],"seed":7}`,
	// Accepted: minimize with defaults and a platform-parameter axis.
	`{"scenario":{"platform":"odroid-xu3","workload":"gen-bursty","governor":"appaware","duration_s":1},"objective":{"metric":"peak_c","goal":"minimize"},"mutations":[{"param":"platform.ambient_c","min":20,"max":30,"step":5}]}`,
	// Accepted: inline platform base with domain/node mutations.
	`{"scenario":{"workload":"gen-bursty","governor":"none","duration_s":1,"platform_spec":` + fuzzPlatformSpecJSON + `},"objective":{"metric":"avg_power_w","goal":"minimize"},"mutations":[{"param":"platform.domain.big.ceff_f","min":2e-10,"max":8e-10,"step":3e-10},{"param":"platform.node.board.capacitance_j_per_k","min":4,"max":8,"step":2}]}`,
	// Accepted: replicated search with explicit knobs.
	`{"name":"rep","scenario":{"platform":"nexus6p","workload":"gen-bursty","governor":"none","duration_s":1},"objective":{"metric":"avg_power_w","goal":"minimize"},"mutations":[{"param":"platform.thermal_limit_c","min":60,"max":80,"step":10}],"replicates":2,"neighbors":4,"max_generations":8,"patience":3,"min_delta":0.001,"seed":9}`,
	// Rejected: non-finite bounds (JSON has no NaN literal; huge
	// exponents collapse to +Inf) in mutations, constraints, min_delta.
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"limit_c","min":55,"max":1e999,"step":5}]}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"constraints":[{"metric":"peak_c","max":1e999}],"mutations":[{"param":"limit_c","min":55,"max":75,"step":5}]}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"limit_c","min":55,"max":75,"step":5}],"min_delta":1e999}`,
	// Rejected: empty or oversized mutation sets, duplicate params.
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[]}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"}}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"limit_c","min":55,"max":75,"step":5},{"param":"limit_c","min":50,"max":60,"step":5}]}`,
	// Rejected: contradictory or unbounded constraints.
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"constraints":[{"metric":"peak_c","min":80,"max":60}],"mutations":[{"param":"limit_c","min":55,"max":75,"step":5}]}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"constraints":[{"metric":"peak_c"}],"mutations":[{"param":"limit_c","min":55,"max":75,"step":5}]}`,
	// Rejected: unknown metric / goal / param / categorical value,
	// mixed mutation shapes, hostile grids.
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"fps"},"mutations":[{"param":"limit_c","min":55,"max":75,"step":5}]}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c","goal":"extremize"},"mutations":[{"param":"limit_c","min":55,"max":75,"step":5}]}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"platform.fan_rpm","min":1,"max":2,"step":1}]}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"cpu_governor","values":["turbo"]}]}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"limit_c","min":55,"max":75,"step":5,"values":["x"]}]}`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"limit_c","min":0,"max":1000000,"step":1e-6}]}`,
	// Rejected: per-point probes catching invalid extreme scenarios.
	`{"scenario":{"platform":"odroid-xu3","workload":"3dmark","governor":"appaware","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"limit_c","min":-400,"max":60,"step":20}]}`,
	`{"scenario":{"platform":"odroid-xu3","workload":"3dmark","governor":"appaware","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"governor","values":["appaware","stepwise"]}]}`,
	// Rejected: invalid base scenario, malformed JSON, trailing data.
	`{"scenario":{"platform":"pixel9","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"limit_c","min":55,"max":75,"step":5}]}`,
	`{"scenario":`,
	`{"scenario":{"platform":"nexus6p","workload":"paper.io","duration_s":1},"objective":{"metric":"peak_c"},"mutations":[{"param":"limit_c","min":55,"max":75,"step":5}]}{"x":1}`,
	`null`,
	`[]`,
}

func FuzzParseObjective(f *testing.F) {
	for _, seed := range objectiveSeedCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseOptimize(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("parsed optimize spec fails re-validation: %v\nspec: %+v", err, spec)
		}
		out, err := spec.JSON()
		if err != nil {
			t.Fatalf("accepted optimize spec fails to encode: %v\nspec: %+v", err, spec)
		}
		spec2, err := ParseOptimize(out)
		if err != nil {
			t.Fatalf("re-decode of accepted optimize spec rejected: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(spec2, spec) {
			t.Fatalf("optimize spec round trip drifted:\nfirst:  %+v\nsecond: %+v", spec, spec2)
		}
		// Plan parity: an accepted spec must build a search plan whose
		// start point materializes back into a valid scenario.
		plan, err := buildSearchPlan(spec)
		if err != nil {
			t.Fatalf("Validate accepted a spec the planner rejects: %v\nspec: %+v", err, spec)
		}
		s, err := plan.candidate(plan.start)
		if err != nil {
			t.Fatalf("start point fails to materialize: %v\nspec: %+v", err, spec)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("start candidate fails validation: %v\nscenario: %+v", err, s)
		}
	})
}

func FuzzParsePlatformSpec(f *testing.F) {
	for _, seed := range platformSpecSeedCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParsePlatformSpec(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("parsed platform spec fails re-validation: %v\nspec: %+v", err, spec)
		}
		out, err := spec.JSON()
		if err != nil {
			t.Fatalf("accepted platform spec fails to encode: %v\nspec: %+v", err, spec)
		}
		spec2, err := ParsePlatformSpec(out)
		if err != nil {
			t.Fatalf("re-decode of accepted platform spec rejected: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(spec2, spec) {
			t.Fatalf("platform spec round trip drifted:\nfirst:  %+v\nsecond: %+v", spec, spec2)
		}
		// Validation parity: an accepted spec must compile — and the
		// compiled platform must carry the spec's identity.
		p, err := spec.Compile(1)
		if err != nil {
			t.Fatalf("Validate accepted a spec the compiler rejects: %v\nspec: %+v", err, spec)
		}
		if p.Name() != spec.Name {
			t.Fatalf("compiled platform name %q != spec name %q", p.Name(), spec.Name)
		}
	})
}
