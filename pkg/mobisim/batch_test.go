package mobisim

// Differential and determinism tests for the batched sweep executor:
// the sequential per-scenario path is the oracle, and the batched
// path must reproduce its serialized output byte for byte — across
// platforms, batch widths, worker counts and GOMAXPROCS settings.

import (
	"bytes"
	"context"
	"runtime"
	"testing"
)

// dualPlatformMatrix sweeps both golden platforms through limit-aware
// and limit-agnostic arms — the nexus6p + odroid-xu3 differential
// matrix of the PR-4 acceptance criteria.
func dualPlatformMatrix() Matrix {
	return Matrix{
		Platforms:  []string{PlatformNexus6P, PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml", "paper.io"},
		Governors:  []string{GovAppAware, GovNone},
		LimitsC:    []float64{55, 65},
		Replicates: 2,
		DurationS:  2,
		BaseSeed:   7,
	}
}

func encodeSweep(t *testing.T, out *SweepOutput) (jsonB, csvB []byte) {
	t.Helper()
	var j, c bytes.Buffer
	if err := out.EncodeJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := out.EncodeCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), c.Bytes()
}

// TestBatchedSweepMatchesSequential is the executor differential: for
// every batch width — including width 1, the degenerate single-lane
// batch — the batched sweep's JSON and CSV bytes must equal the
// sequential path's on the nexus6p + odroid-xu3 matrix.
func TestBatchedSweepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	m := dualPlatformMatrix()
	run := func(cfg SweepConfig) *SweepOutput {
		t.Helper()
		cfg.IncludeRaw = true
		out, err := RunSweep(context.Background(), m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	wantJSON, wantCSV := encodeSweep(t, run(SweepConfig{Workers: 1}))
	for _, width := range []int{1, 3, 8} {
		gotJSON, gotCSV := encodeSweep(t, run(SweepConfig{Workers: 1, BatchWidth: width}))
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("width %d: batched JSON differs from sequential:\n--- batched ---\n%s\n--- sequential ---\n%s", width, gotJSON, wantJSON)
		}
		if !bytes.Equal(gotCSV, wantCSV) {
			t.Errorf("width %d: batched CSV differs from sequential:\n--- batched ---\n%s\n--- sequential ---\n%s", width, gotCSV, wantCSV)
		}
	}
	// RunSweepBatched is RunSweep with the default width filled in.
	out, err := RunSweepBatched(context.Background(), m, SweepConfig{Workers: 1, IncludeRaw: true})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := encodeSweep(t, out)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("RunSweepBatched output differs from sequential")
	}
}

// TestBatchedSweepBytesIdenticalAcrossGOMAXPROCS mirrors the
// sequential scheduler-independence pin for the batched executor: the
// serialized output must be byte-identical whether the runtime
// schedules the batch workers on one OS thread or eight.
func TestBatchedSweepBytesIdenticalAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	matrix := Matrix{
		Platforms:  []string{PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{GovAppAware},
		LimitsC:    []float64{55, 65},
		Replicates: 2,
		DurationS:  2,
		BaseSeed:   42,
	}
	runAt := func(procs int) (jsonB, csvB []byte) {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		out, err := RunSweep(context.Background(), matrix, SweepConfig{Workers: 8, BatchWidth: 3, IncludeRaw: true})
		if err != nil {
			t.Fatal(err)
		}
		return encodeSweep(t, out)
	}
	json1, csv1 := runAt(1)
	json8, csv8 := runAt(8)
	if !bytes.Equal(json1, json8) {
		t.Errorf("batched JSON differs between GOMAXPROCS=1 and 8:\n--- 1 ---\n%s\n--- 8 ---\n%s", json1, json8)
	}
	if !bytes.Equal(csv1, csv8) {
		t.Errorf("batched CSV differs between GOMAXPROCS=1 and 8:\n--- 1 ---\n%s\n--- 8 ---\n%s", csv1, csv8)
	}
}

// TestBatchedSweepCancellation mirrors the sequential cancellation
// contract.
func TestBatchedSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSweep(ctx, goldenMatrix(), SweepConfig{Workers: 2, BatchWidth: 4}); err == nil {
		t.Error("canceled context should abort the batched sweep")
	}
}
