package mobisim

import (
	"bytes"
	"context"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden sweep outputs")

func goldenMatrix() Matrix {
	return Matrix{
		Platforms:  []string{PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{GovAppAware},
		LimitsC:    []float64{55, 65},
		Replicates: 1,
		DurationS:  2,
		BaseSeed:   1,
	}
}

func TestMatrixRoundTripAndValidation(t *testing.T) {
	m := goldenMatrix()
	j, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseMatrix(j)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j, j2) {
		t.Errorf("matrix encode is not byte-stable:\n%s\nvs\n%s", j, j2)
	}
	if m.ExpandedSize() != 2 {
		t.Errorf("expanded size = %d, want 2", m.ExpandedSize())
	}

	bad := goldenMatrix()
	bad.Governors = []string{"psychic"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown governor arm should be rejected")
	}
	bad = goldenMatrix()
	bad.Platforms = []string{"pixel9"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown platform should be rejected")
	}
	bad = goldenMatrix()
	bad.DurationS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duration should be rejected")
	}
	// NaN is unreachable through JSON (no literal), so the direct-
	// construction path carries the regression: non-finite limits must
	// be rejected even when every arm is limit-agnostic and the probe
	// scenarios collapse the axis.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		bad = goldenMatrix()
		bad.Governors = []string{GovNone}
		bad.LimitsC = []float64{v}
		if err := bad.Validate(); err == nil {
			t.Errorf("limit-agnostic matrix with limit %v should be rejected", v)
		}
		bad = goldenMatrix()
		bad.LimitsC = []float64{v}
		if err := bad.Validate(); err == nil {
			t.Errorf("limit-aware matrix with limit %v should be rejected", v)
		}
	}
	// Limit collapsing: agnostic arms sweep one cell regardless of limits.
	collapsed := goldenMatrix()
	collapsed.Governors = []string{GovIPA, GovNone}
	if got := collapsed.ExpandedSize(); got != 2 {
		t.Errorf("limit-agnostic arms should collapse the limits axis: size %d, want 2", got)
	}
}

// TestSweepOutputMatchesGolden locks the serialization contract the
// spec loader depends on: a tiny 2-scenario matrix must aggregate to
// byte-stable JSON and CSV summaries. Regenerate with
// go test ./pkg/mobisim -run Golden -update
// (float metric values assume amd64; Go may fuse float ops on other
// architectures).
func TestSweepOutputMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	run := func(workers int) *SweepOutput {
		t.Helper()
		out, err := RunSweep(context.Background(), goldenMatrix(), SweepConfig{Workers: workers, IncludeRaw: true})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	encode := func(out *SweepOutput) (jsonB, csvB []byte) {
		t.Helper()
		var j, c bytes.Buffer
		if err := out.EncodeJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := out.EncodeCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}

	gotJSON, gotCSV := encode(run(2))

	// Worker-count independence: serial and parallel pools serialize to
	// identical bytes.
	serialJSON, serialCSV := encode(run(1))
	if !bytes.Equal(gotJSON, serialJSON) || !bytes.Equal(gotCSV, serialCSV) {
		t.Fatal("sweep output differs between 1 and 2 workers")
	}

	jsonPath := filepath.Join("testdata", "sweep_golden.json")
	csvPath := filepath.Join("testdata", "sweep_golden.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvPath, gotCSV, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden files rewritten")
		return
	}
	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("JSON sweep output drifted from golden:\ngot:\n%s\nwant:\n%s", gotJSON, wantJSON)
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("CSV sweep output drifted from golden:\ngot:\n%s\nwant:\n%s", gotCSV, wantCSV)
	}
}

func TestRunSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSweep(ctx, goldenMatrix(), SweepConfig{Workers: 2}); err == nil {
		t.Error("canceled context should abort the sweep")
	}
}
