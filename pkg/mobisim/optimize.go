package mobisim

// Declarative design-space exploration (mobisim.Optimize).
//
// An OptimizeSpec names a base scenario, an objective over the
// engine's metrics, optional metric constraints, and a set of
// parameter mutations spanning scenario knobs (thermal limit,
// governors) and platform-spec content (thermal and power
// parameters). Optimize quantizes each numeric mutation onto a grid,
// runs the seeded hill-climb of internal/explore over the resulting
// space, and evaluates every generation of candidates as lockstep
// batches on pooled engines — the same executors, content keys and
// byte-exactness contracts the sweep paths use.
//
// The spec follows the Scenario/Matrix JSON discipline: strict
// decoding (unknown fields rejected), idempotent Normalize, a Validate
// at least as strict as the search (any accepted spec starts), and a
// stable indented JSON rendering.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/explore"
)

// Objective goals.
const (
	// GoalMaximize seeks the largest objective metric (the default).
	GoalMaximize = "maximize"
	// GoalMinimize seeks the smallest objective metric.
	GoalMinimize = "minimize"
)

// Mutable scenario-level parameter names (Mutation.Param). Platform
// content parameters use the "platform." dotted paths documented on
// Mutation.
const (
	// ParamLimitC mutates the appaware thermal limit (Scenario.LimitC).
	ParamLimitC = "limit_c"
	// ParamGovernor mutates the thermal-management arm.
	ParamGovernor = "governor"
	// ParamCPUGovernor mutates the CPUfreq governor family.
	ParamCPUGovernor = "cpu_governor"
)

// knownMetricNames lists the Engine.Metrics keys an objective or
// constraint may reference. Not every scenario produces every metric;
// a candidate whose run lacks a referenced metric is infeasible.
var knownMetricNames = []string{
	MetricPeakC, MetricAvgPowerW, MetricMigrations, MetricGT1FPS,
	MetricGT2FPS, MetricMedianFPS, MetricScore, MetricBMLIterations,
}

// KnownMetrics returns the metric names an optimization objective or
// constraint may reference.
func KnownMetrics() []string { return append([]string(nil), knownMetricNames...) }

// KnownCPUGovernors returns the accepted CPUfreq governor family names.
func KnownCPUGovernors() []string {
	return []string{CPUGovStock, CPUGovInteractive, CPUGovOndemand,
		CPUGovPerformance, CPUGovPowersave, CPUGovConservative}
}

func knownMetric(name string) bool {
	for _, m := range knownMetricNames {
		if name == m {
			return true
		}
	}
	return false
}

// Objective declares what the search optimizes: one metric, pushed in
// one direction.
type Objective struct {
	// Metric is the Engine.Metrics key to optimize (see KnownMetrics).
	Metric string `json:"metric"`
	// Goal is GoalMaximize or GoalMinimize; empty defaults to maximize.
	Goal string `json:"goal,omitempty"`
}

// Constraint bounds one metric: a candidate is feasible only when
// every constraint holds on its aggregated metrics. At least one bound
// must be set.
type Constraint struct {
	// Metric is the Engine.Metrics key the bound applies to.
	Metric string `json:"metric"`
	// Min, when set, requires metric >= *Min.
	Min *float64 `json:"min,omitempty"`
	// Max, when set, requires metric <= *Max.
	Max *float64 `json:"max,omitempty"`
}

// Mutation declares one searchable parameter. Exactly one shape is
// valid per mutation:
//
//   - numeric: Min, Max and Step set (Values empty). The parameter is
//     quantized to the grid Min, Min+Step, ... ≤ Max; candidates only
//     ever take grid values, so candidate identity is exact.
//   - categorical: Values set (numeric fields zero). The parameter
//     takes one of the listed choices.
//
// Numeric parameter names: ParamLimitC, plus the platform content
// paths "platform.ambient_c", "platform.thermal_limit_c",
// "platform.domain.<id>.{ceff_f,idle_w,leak_k,leak_q}" and
// "platform.node.<name>.{capacitance_j_per_k,g_ambient_w_per_k}".
// Categorical parameter names: ParamGovernor (values from
// KnownGovernors) and ParamCPUGovernor (values from
// KnownCPUGovernors).
//
// When any "platform." parameter is mutated, every candidate embeds a
// mutated copy of the base scenario's resolved platform spec, renamed
// "<base>@dse-<indices>" so distinct platform contents never share a
// platform label (content keys and sweep rows stay unambiguous).
type Mutation struct {
	Param  string   `json:"param"`
	Min    float64  `json:"min,omitempty"`
	Max    float64  `json:"max,omitempty"`
	Step   float64  `json:"step,omitempty"`
	Values []string `json:"values,omitempty"`
}

// numeric reports whether the mutation declares the numeric shape.
func (m Mutation) numeric() bool { return len(m.Values) == 0 }

// Search-knob bounds Validate enforces.
const (
	// MaxMutations bounds the searchable parameter count.
	MaxMutations = 32
	// MaxReplicates bounds the replicate runs per candidate.
	MaxReplicates = 64
	// MaxNeighbors bounds the candidates drawn per generation.
	MaxNeighbors = 256
	// MaxSearchGenerations bounds the generation budget.
	MaxSearchGenerations = 4096
)

// OptimizeSpec is a declarative, JSON-serializable design-space
// search: a base scenario, an objective, constraints, and the
// parameter mutations spanning the space. The zero value is not
// runnable; fill Scenario, Objective and Mutations, then Normalize and
// Validate (ParseOptimize and LoadOptimize do both).
type OptimizeSpec struct {
	// Name optionally labels the search in logs and output files.
	Name string `json:"name,omitempty"`
	// Scenario is the base (start) scenario mutations perturb. It is
	// normalized first, so candidates inherit its materialized defaults
	// (governor, prewarm) rather than re-deriving them per candidate.
	Scenario Scenario `json:"scenario"`
	// Objective is the optimization target.
	Objective Objective `json:"objective"`
	// Constraints gate feasibility; empty means every evaluated
	// candidate is feasible.
	Constraints []Constraint `json:"constraints,omitempty"`
	// Mutations are the searchable parameters (at least one).
	Mutations []Mutation `json:"mutations"`
	// Replicates runs each candidate this many times with derived seeds
	// and aggregates metrics by mean; 0 defaults to 1. Replicate 0 runs
	// the base scenario seed itself, so single-replicate searches share
	// cell keys (and result caches) with plain scenario runs.
	Replicates int `json:"replicates,omitempty"`
	// Neighbors is the candidate count per generation (0 = 8).
	Neighbors int `json:"neighbors,omitempty"`
	// MaxGenerations bounds the search length (0 = 32).
	MaxGenerations int `json:"max_generations,omitempty"`
	// Patience stops after this many generations without improvement
	// (0 = 4).
	Patience int `json:"patience,omitempty"`
	// MinDelta is the strict improvement threshold for moving the
	// incumbent.
	MinDelta float64 `json:"min_delta,omitempty"`
	// Seed drives neighbor generation; identical seeds reproduce the
	// search trajectory bitwise.
	Seed int64 `json:"seed"`
}

// Normalize fills defaults in place: the base scenario's own defaults
// first (candidates are derived from the normalized base), then the
// objective goal and the search knobs. It is idempotent.
func (o *OptimizeSpec) Normalize() {
	o.Scenario.Normalize()
	if o.Objective.Goal == "" {
		o.Objective.Goal = GoalMaximize
	}
	if o.Replicates == 0 {
		o.Replicates = 1
	}
	if o.Neighbors == 0 {
		o.Neighbors = 8
	}
	if o.MaxGenerations == 0 {
		o.MaxGenerations = 32
	}
	if o.Patience == 0 {
		o.Patience = 4
	}
}

// Validate checks the spec without simulating anything. Like
// Scenario.Validate it is deliberately at least as strict as the
// search: any accepted spec builds its search space, and every
// single-axis extreme of that space yields a scenario the engine
// accepts, so parameter-range mistakes surface at the API boundary
// instead of as a search full of invalid candidates. (Cross-axis
// combinations are probed lazily: a candidate mixing mutations into an
// invalid scenario is recorded as invalid and skipped, not a hard
// error.)
func (o OptimizeSpec) Validate() error {
	if err := o.Scenario.Validate(); err != nil {
		return fmt.Errorf("mobisim: optimize base scenario: %w", err)
	}
	if !knownMetric(o.Objective.Metric) {
		return fmt.Errorf("mobisim: unknown objective metric %q (want one of %s)",
			o.Objective.Metric, strings.Join(knownMetricNames, ", "))
	}
	switch o.Objective.Goal {
	case GoalMaximize, GoalMinimize:
	default:
		return fmt.Errorf("mobisim: unknown objective goal %q (want %s or %s)", o.Objective.Goal, GoalMaximize, GoalMinimize)
	}
	for i, c := range o.Constraints {
		if !knownMetric(c.Metric) {
			return fmt.Errorf("mobisim: constraint %d: unknown metric %q (want one of %s)",
				i, c.Metric, strings.Join(knownMetricNames, ", "))
		}
		if c.Min == nil && c.Max == nil {
			return fmt.Errorf("mobisim: constraint %d (%s): needs a min or max bound", i, c.Metric)
		}
		if c.Min != nil && (math.IsNaN(*c.Min) || math.IsInf(*c.Min, 0)) {
			return fmt.Errorf("mobisim: constraint %d (%s): min must be finite, got %v", i, c.Metric, *c.Min)
		}
		if c.Max != nil && (math.IsNaN(*c.Max) || math.IsInf(*c.Max, 0)) {
			return fmt.Errorf("mobisim: constraint %d (%s): max must be finite, got %v", i, c.Metric, *c.Max)
		}
		if c.Min != nil && c.Max != nil && *c.Min > *c.Max {
			return fmt.Errorf("mobisim: constraint %d (%s): min %v exceeds max %v (contradictory bounds)", i, c.Metric, *c.Min, *c.Max)
		}
	}
	if len(o.Mutations) == 0 {
		return fmt.Errorf("mobisim: optimize spec needs at least one mutation")
	}
	if len(o.Mutations) > MaxMutations {
		return fmt.Errorf("mobisim: %d mutations exceed the %d bound", len(o.Mutations), MaxMutations)
	}
	seen := make(map[string]bool, len(o.Mutations))
	for i, m := range o.Mutations {
		if m.Param == "" {
			return fmt.Errorf("mobisim: mutation %d needs a param name", i)
		}
		if seen[m.Param] {
			return fmt.Errorf("mobisim: duplicate mutation param %q", m.Param)
		}
		seen[m.Param] = true
		if err := m.validateShape(); err != nil {
			return err
		}
	}
	if o.Replicates < 1 || o.Replicates > MaxReplicates {
		return fmt.Errorf("mobisim: replicates %d out of range [1, %d]", o.Replicates, MaxReplicates)
	}
	if o.Neighbors < 1 || o.Neighbors > MaxNeighbors {
		return fmt.Errorf("mobisim: neighbors %d out of range [1, %d]", o.Neighbors, MaxNeighbors)
	}
	if o.MaxGenerations < 1 || o.MaxGenerations > MaxSearchGenerations {
		return fmt.Errorf("mobisim: max generations %d out of range [1, %d]", o.MaxGenerations, MaxSearchGenerations)
	}
	if o.Patience < 1 || o.Patience > MaxSearchGenerations {
		return fmt.Errorf("mobisim: patience %d out of range [1, %d]", o.Patience, MaxSearchGenerations)
	}
	if math.IsNaN(o.MinDelta) || math.IsInf(o.MinDelta, 0) || o.MinDelta < 0 {
		return fmt.Errorf("mobisim: min delta must be finite and >= 0, got %v", o.MinDelta)
	}

	plan, err := buildSearchPlan(o)
	if err != nil {
		return err
	}
	return plan.probeExtremes()
}

// validateShape checks the mutation's numeric-or-categorical shape and
// that its parameter and values are legal; range/grid rules belong to
// the search-space construction.
func (m Mutation) validateShape() error {
	if m.numeric() {
		for _, f := range []struct {
			name  string
			value float64
		}{{"min", m.Min}, {"max", m.Max}, {"step", m.Step}} {
			if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
				return fmt.Errorf("mobisim: mutation %q: %s must be finite, got %v", m.Param, f.name, f.value)
			}
		}
		if m.Step <= 0 {
			return fmt.Errorf("mobisim: mutation %q: step must be > 0, got %v", m.Param, m.Step)
		}
		if m.Min > m.Max {
			return fmt.Errorf("mobisim: mutation %q: min %v exceeds max %v", m.Param, m.Min, m.Max)
		}
		if !numericParam(m.Param) {
			if catParamValues(m.Param) != nil {
				return fmt.Errorf("mobisim: mutation %q is categorical; declare values, not a numeric range", m.Param)
			}
			return fmt.Errorf("mobisim: unknown numeric mutation param %q", m.Param)
		}
		return nil
	}
	if m.Min != 0 || m.Max != 0 || m.Step != 0 {
		return fmt.Errorf("mobisim: mutation %q mixes categorical values with a numeric range", m.Param)
	}
	legal := catParamValues(m.Param)
	if legal == nil {
		if numericParam(m.Param) {
			return fmt.Errorf("mobisim: mutation %q is numeric; declare min/max/step, not values", m.Param)
		}
		return fmt.Errorf("mobisim: unknown categorical mutation param %q", m.Param)
	}
	for _, v := range m.Values {
		ok := false
		for _, l := range legal {
			if v == l {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("mobisim: mutation %q: unknown value %q (want one of %s)", m.Param, v, strings.Join(legal, ", "))
		}
	}
	return nil
}

// ParseOptimize decodes, normalizes and validates a JSON optimize
// spec. Unknown fields are rejected so typos fail loudly instead of
// silently searching the wrong space.
func ParseOptimize(data []byte) (OptimizeSpec, error) {
	var o OptimizeSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&o); err != nil {
		return OptimizeSpec{}, fmt.Errorf("mobisim: decode optimize spec: %w", err)
	}
	if dec.More() {
		return OptimizeSpec{}, fmt.Errorf("mobisim: trailing data after optimize spec document")
	}
	o.Normalize()
	if err := o.Validate(); err != nil {
		return OptimizeSpec{}, err
	}
	return o, nil
}

// LoadOptimize reads and parses an optimize spec file.
func LoadOptimize(path string) (OptimizeSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return OptimizeSpec{}, fmt.Errorf("mobisim: %w", err)
	}
	o, err := ParseOptimize(data)
	if err != nil {
		return OptimizeSpec{}, fmt.Errorf("mobisim: %s: %w", path, err)
	}
	return o, nil
}

// JSON renders the spec as indented JSON with a trailing newline.
// Encoding a parsed spec and re-parsing it is stable.
func (o OptimizeSpec) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("mobisim: encode optimize spec: %w", err)
	}
	return append(out, '\n'), nil
}

// Parameter registry: the dotted paths candidates can mutate.

// numericParam reports whether name is a known numeric parameter.
// Resolvability against a concrete spec (the named domain or node
// existing) is checked by the search plan; here only the path grammar
// matters.
func numericParam(name string) bool {
	if name == ParamLimitC {
		return true
	}
	_, _, err := splitPlatformParam(name)
	return err == nil
}

// splitPlatformParam parses a "platform." parameter path into its
// scope ("", "domain.<id>" or "node.<name>") and field name.
func splitPlatformParam(name string) (scope, field string, err error) {
	rest, ok := strings.CutPrefix(name, "platform.")
	if !ok {
		return "", "", fmt.Errorf("mobisim: unknown mutation param %q", name)
	}
	switch rest {
	case "ambient_c", "thermal_limit_c":
		return "", rest, nil
	}
	if sub, ok := strings.CutPrefix(rest, "domain."); ok {
		id, field, ok := strings.Cut(sub, ".")
		if !ok || id == "" {
			return "", "", fmt.Errorf("mobisim: mutation param %q: want platform.domain.<id>.<field>", name)
		}
		switch field {
		case "ceff_f", "idle_w", "leak_k", "leak_q":
			return "domain." + id, field, nil
		}
		return "", "", fmt.Errorf("mobisim: mutation param %q: unknown domain field %q (want ceff_f, idle_w, leak_k or leak_q)", name, field)
	}
	if sub, ok := strings.CutPrefix(rest, "node."); ok {
		node, field, ok := strings.Cut(sub, ".")
		if !ok || node == "" {
			return "", "", fmt.Errorf("mobisim: mutation param %q: want platform.node.<name>.<field>", name)
		}
		switch field {
		case "capacitance_j_per_k", "g_ambient_w_per_k":
			return "node." + node, field, nil
		}
		return "", "", fmt.Errorf("mobisim: mutation param %q: unknown node field %q (want capacitance_j_per_k or g_ambient_w_per_k)", name, field)
	}
	return "", "", fmt.Errorf("mobisim: unknown platform mutation param %q", name)
}

// catParamValues returns the legal value set of a categorical
// parameter, or nil when name is not categorical.
func catParamValues(name string) []string {
	switch name {
	case ParamGovernor:
		return KnownGovernors()
	case ParamCPUGovernor:
		return KnownCPUGovernors()
	}
	return nil
}

// platformFieldPtr resolves a "platform." parameter path to the field
// it addresses inside ps.
func platformFieldPtr(ps *PlatformSpec, name string) (*float64, error) {
	scope, field, err := splitPlatformParam(name)
	if err != nil {
		return nil, err
	}
	switch scope {
	case "":
		switch field {
		case "ambient_c":
			return &ps.AmbientC, nil
		case "thermal_limit_c":
			return &ps.ThermalLimitC, nil
		}
	default:
		if id, ok := strings.CutPrefix(scope, "domain."); ok {
			for i := range ps.Domains {
				if ps.Domains[i].ID != id {
					continue
				}
				d := &ps.Domains[i]
				switch field {
				case "ceff_f":
					return &d.CeffF, nil
				case "idle_w":
					return &d.IdleW, nil
				case "leak_k":
					return &d.LeakK, nil
				case "leak_q":
					return &d.LeakQ, nil
				}
			}
			return nil, fmt.Errorf("mobisim: mutation param %q: platform %q has no domain %q", name, ps.Name, id)
		}
		if node, ok := strings.CutPrefix(scope, "node."); ok {
			for i := range ps.Nodes {
				if ps.Nodes[i].Name != node {
					continue
				}
				n := &ps.Nodes[i]
				switch field {
				case "capacitance_j_per_k":
					return &n.CapacitanceJPerK, nil
				case "g_ambient_w_per_k":
					return &n.GAmbientWPerK, nil
				}
			}
			return nil, fmt.Errorf("mobisim: mutation param %q: platform %q has no node %q", name, ps.Name, node)
		}
	}
	return nil, fmt.Errorf("mobisim: unknown mutation param %q", name)
}

// searchPlan is a validated spec compiled for the search loop: the
// explore space, the start point (the base scenario projected onto the
// grid), and the mutation lists aligned with the space's axes.
type searchPlan struct {
	spec    OptimizeSpec
	base    Scenario
	basePS  PlatformSpec
	numMuts []Mutation // aligned with space.Nums
	catMuts []Mutation // aligned with space.Cats
	space   explore.Space
	start   explore.Point
	// hasPlatform reports whether any mutation touches platform
	// content; when true every candidate embeds a renamed inline spec.
	hasPlatform bool
}

// buildSearchPlan compiles a (normalized) spec into its search plan.
func buildSearchPlan(o OptimizeSpec) (*searchPlan, error) {
	base := o.Scenario.cloneRefs()
	base.Normalize()
	// Candidates execute in the sweep executors' model-only-BML
	// configuration: cells are content-identical with the equivalent
	// sweep cells, so the simd result cache is shared across tools, and
	// the candidate step path inherits the sweep loop's zero-alloc
	// steady state.
	base.ModelOnlyBML = true
	basePS, err := resolvedPlatformSpec(base)
	if err != nil {
		return nil, fmt.Errorf("mobisim: optimize base scenario: %w", err)
	}
	p := &searchPlan{spec: o, base: base, basePS: basePS}
	for _, m := range o.Mutations {
		if m.numeric() {
			p.numMuts = append(p.numMuts, m)
			p.space.Nums = append(p.space.Nums, explore.NumAxis{Name: m.Param, Min: m.Min, Max: m.Max, Step: m.Step})
			if strings.HasPrefix(m.Param, "platform.") {
				p.hasPlatform = true
			}
		} else {
			p.catMuts = append(p.catMuts, m)
			p.space.Cats = append(p.space.Cats, explore.CatAxis{Name: m.Param, Values: append([]string(nil), m.Values...)})
		}
	}
	if err := p.space.Validate(); err != nil {
		return nil, err
	}

	// Project the base scenario onto the grid: each axis starts at the
	// grid point nearest the base value (clamped into the range), or
	// the first choice when the base value is not listed.
	p.start = explore.Point{Nums: make([]int, len(p.numMuts)), Cats: make([]int, len(p.catMuts))}
	for i, m := range p.numMuts {
		v, err := p.readNum(m.Param)
		if err != nil {
			return nil, err
		}
		p.start.Nums[i] = p.space.Nums[i].Index(v)
	}
	for i, m := range p.catMuts {
		base := p.readCat(m.Param)
		for vi, v := range p.space.Cats[i].Values {
			if v == base {
				p.start.Cats[i] = vi
				break
			}
		}
	}
	return p, nil
}

// readNum returns the base scenario's current value of a numeric
// parameter.
func (p *searchPlan) readNum(name string) (float64, error) {
	if name == ParamLimitC {
		return effectiveLimitC(p.base)
	}
	ps := p.basePS
	ptr, err := platformFieldPtr(&ps, name)
	if err != nil {
		return 0, err
	}
	return *ptr, nil
}

// readCat returns the base scenario's current value of a categorical
// parameter.
func (p *searchPlan) readCat(name string) string {
	switch name {
	case ParamGovernor:
		return p.base.Governor
	case ParamCPUGovernor:
		return p.base.CPUGovernor
	}
	return ""
}

// platformName labels a candidate's mutated platform content. Only the
// platform-axis indices participate, so candidates that share platform
// content share the label (and the resolved-platform contribution to
// their cell keys), while distinct contents never collide.
func (p *searchPlan) platformName(pt explore.Point) string {
	var b strings.Builder
	b.WriteString(p.basePS.Name)
	b.WriteString("@dse")
	for i, m := range p.numMuts {
		if strings.HasPrefix(m.Param, "platform.") {
			b.WriteByte('-')
			b.WriteString(strconv.Itoa(pt.Nums[i]))
		}
	}
	return b.String()
}

// candidate materializes the scenario at a grid point: clone the
// normalized base, apply every axis value, and re-normalize. The
// returned scenario is not yet validated — the evaluator records
// validation failures as invalid candidates.
func (p *searchPlan) candidate(pt explore.Point) (Scenario, error) {
	s := p.base.cloneRefs()
	var ps *PlatformSpec
	if p.hasPlatform {
		c := p.basePS.Clone()
		ps = &c
	}
	for i, m := range p.numMuts {
		v := p.space.Nums[i].Value(pt.Nums[i])
		if m.Param == ParamLimitC {
			s.LimitC = v
			continue
		}
		if ps == nil {
			return Scenario{}, fmt.Errorf("mobisim: mutation param %q needs a platform spec", m.Param)
		}
		ptr, err := platformFieldPtr(ps, m.Param)
		if err != nil {
			return Scenario{}, err
		}
		*ptr = v
	}
	for i, m := range p.catMuts {
		v := p.space.Cats[i].Values[pt.Cats[i]]
		switch m.Param {
		case ParamGovernor:
			s.Governor = v
		case ParamCPUGovernor:
			s.CPUGovernor = v
		default:
			return Scenario{}, fmt.Errorf("mobisim: unknown categorical mutation param %q", m.Param)
		}
	}
	if ps != nil {
		ps.Name = p.platformName(pt)
		s.PlatformSpec = ps
		s.Platform = ""
	}
	s.Normalize()
	return s, nil
}

// probeExtremes validates the start point and every single-axis
// extreme of the space (each axis at its first and last index, the
// others at the start): a Validate-accepted spec is guaranteed a legal
// start and per-axis ranges that do not leave the engine's domain.
func (p *searchPlan) probeExtremes() error {
	probe := func(pt explore.Point, what string) error {
		s, err := p.candidate(pt)
		if err != nil {
			return fmt.Errorf("mobisim: optimize spec: %s: %w", what, err)
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("mobisim: optimize spec: %s yields an invalid scenario: %w", what, err)
		}
		return nil
	}
	if err := probe(p.start, "start point"); err != nil {
		return err
	}
	for i, a := range p.space.Nums {
		for _, idx := range []int{0, a.Points() - 1} {
			pt := p.start.Clone()
			pt.Nums[i] = idx
			if err := probe(pt, fmt.Sprintf("mutation %q at %v", a.Name, a.Value(idx))); err != nil {
				return err
			}
		}
	}
	for i, a := range p.space.Cats {
		for vi, v := range a.Values {
			pt := p.start.Clone()
			pt.Cats[i] = vi
			if err := probe(pt, fmt.Sprintf("mutation %q at %q", a.Name, v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// paramValues renders a point as the parameter assignment it encodes,
// in mutation declaration order (numeric axes first, then
// categorical, matching the space's axis order).
func (p *searchPlan) paramValues(pt explore.Point) []ParamValue {
	out := make([]ParamValue, 0, len(p.numMuts)+len(p.catMuts))
	for i, m := range p.numMuts {
		v := p.space.Nums[i].Value(pt.Nums[i])
		out = append(out, ParamValue{Param: m.Param, Value: &v})
	}
	for i, m := range p.catMuts {
		out = append(out, ParamValue{Param: m.Param, Choice: p.space.Cats[i].Values[pt.Cats[i]]})
	}
	return out
}
