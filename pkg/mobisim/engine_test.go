package mobisim

import (
	"testing"

	"repro/internal/appaware"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/thermgov"
	"repro/internal/workload"
)

// The tests in this file pin the acceptance criterion of the facade
// refactor: a run driven through pkg/mobisim must reproduce the same
// metrics as the pre-refactor hand-rolled wiring, bitwise. The
// "frozen" helpers below are literal copies of the wiring that used to
// live in internal/experiments (RunNexusApp and ScenarioSpec.Run)
// before it was ported onto this facade; they must never be updated to
// track production code.

func frozenNexusGovernors(t *testing.T) map[platform.DomainID]governor.Governor {
	t.Helper()
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	gpuGov, err := governor.NewInteractive(governor.InteractiveConfig{
		TargetLoad:         0.90,
		HispeedFreqHz:      510e6,
		AboveHispeedDelayS: 1.0,
		BoostHoldS:         0.05,
		IntervalS:          0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[platform.DomainID]governor.Governor{
		platform.DomLittle: littleGov,
		platform.DomBig:    bigGov,
		platform.DomGPU:    gpuGov,
	}
}

// frozenNexusRun is the pre-refactor RunNexusApp wiring: foreground on
// the big cluster, an OS background task on the little cluster, the
// step-wise trip governor when throttling, thermgov.None otherwise.
func frozenNexusRun(t *testing.T, app string, throttle bool, durationS float64, seed int64) (*sim.Engine, *workload.FrameApp) {
	t.Helper()
	var fg *workload.FrameApp
	switch app {
	case "paper.io":
		fg = workload.PaperIO(seed)
	case "stickman-hook":
		fg = workload.StickmanHook(seed)
	default:
		t.Fatalf("frozen wiring only knows paper.io and stickman-hook, not %q", app)
	}
	plat := platform.Nexus6P(seed)
	var tg thermgov.Governor = thermgov.None{}
	if throttle {
		var err error
		tg, err = thermgov.NewStepWise(thermgov.StepWiseConfig{
			TripK:       273.15 + 44,
			HysteresisK: 1,
			CriticalK:   273.15 + 95,
			IntervalS:   0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	osBG := workload.MustFrameApp(workload.FrameAppConfig{
		Name: "android-os",
		Phases: []workload.Phase{
			{DurationS: 60, CPUCyclesPerFrame: 4e6, TargetFPS: 30, TouchRatePerS: 0},
		},
		Loop: true,
		Seed: seed + 1,
	})
	eng, err := sim.New(sim.Config{
		Platform: plat,
		Apps: []sim.AppSpec{
			{App: fg, PID: 1, Cluster: sched.Big, Threads: 2},
			{App: osBG, PID: 2, Cluster: sched.Little, Threads: 1},
		},
		Governors: frozenNexusGovernors(t),
		Thermal:   tg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.Prewarm(36); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(durationS); err != nil {
		t.Fatal(err)
	}
	return eng, fg
}

// frozenOdroidAppAwareRun is the pre-refactor ScenarioSpec.Run wiring
// for the odroid-xu3 / 3dmark+bml / appaware arm with model-only BML.
func frozenOdroidAppAwareRun(t *testing.T, limitC, durationS float64, seed int64) (*sim.Engine, *workload.ThreeDMark, *workload.BML, *appaware.Governor) {
	t.Helper()
	plat := platform.OdroidXU3(seed)
	bench := workload.NewThreeDMark(seed)
	bml := workload.NewBML()
	bml.ExecuteRatio = 0

	acfg := appaware.Config{HorizonS: 30, IntervalS: 0.1}
	if limitC != 0 {
		acfg.ThermalLimitK = thermal.ToKelvin(limitC)
	}
	ctrl, err := appaware.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Platform: plat,
		Apps: []sim.AppSpec{
			{App: bench, PID: 1, Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: littleGov,
			platform.DomBig:    bigGov,
			platform.DomGPU:    gpuGov,
		},
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.Prewarm(50); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(durationS); err != nil {
		t.Fatal(err)
	}
	return eng, bench, bml, ctrl
}

func TestFacadeReproducesNexusPreRefactorMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	const durationS, seed = 10, 3
	for _, throttle := range []bool{false, true} {
		gov := GovNone
		if throttle {
			gov = GovStepwise
		}
		eng, err := New(Scenario{
			Platform:  PlatformNexus6P,
			Workload:  "paper.io",
			Governor:  gov,
			DurationS: durationS,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		got := eng.Metrics()

		ref, refFG := frozenNexusRun(t, "paper.io", throttle, durationS, seed)
		want := map[string]float64{
			MetricPeakC:      thermal.ToCelsius(ref.MaxTempSeenK()),
			MetricAvgPowerW:  ref.Meter().AveragePowerW(),
			MetricMigrations: float64(ref.Scheduler().Migrations()),
			MetricMedianFPS:  refFG.MedianFPS(),
		}
		if len(got) != len(want) {
			t.Fatalf("throttle=%v: metric sets differ:\nfacade: %v\nfrozen: %v", throttle, got, want)
		}
		for name, w := range want {
			if g, ok := got[name]; !ok || g != w {
				t.Errorf("throttle=%v: metric %s = %v via facade, %v via frozen wiring", throttle, name, got[name], w)
			}
		}
	}
}

func TestFacadeReproducesOdroidPreRefactorMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	const limitC, durationS, seed = 60, 10, 3
	eng, err := New(Scenario{
		Platform:     PlatformOdroidXU3,
		Workload:     "3dmark+bml",
		Governor:     GovAppAware,
		LimitC:       limitC,
		DurationS:    durationS,
		Seed:         seed,
		ModelOnlyBML: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	got := eng.Metrics()

	ref, bench, bml, ctrl := frozenOdroidAppAwareRun(t, limitC, durationS, seed)
	want := map[string]float64{
		MetricPeakC:         thermal.ToCelsius(ref.MaxTempSeenK()),
		MetricAvgPowerW:     ref.Meter().AveragePowerW(),
		MetricMigrations:    float64(ctrl.Migrations()),
		MetricGT1FPS:        bench.GT1FPS(),
		MetricGT2FPS:        bench.GT2FPS(),
		MetricBMLIterations: float64(bml.Iterations()),
	}
	if len(got) != len(want) {
		t.Fatalf("metric sets differ:\nfacade: %v\nfrozen: %v", got, want)
	}
	for name, w := range want {
		if g, ok := got[name]; !ok || g != w {
			t.Errorf("metric %s = %v via facade, %v via frozen wiring", name, got[name], w)
		}
	}
}

func TestNewRejectsBadSpecsAndOptions(t *testing.T) {
	bad := []Scenario{
		{Platform: "pixel9", Workload: "3dmark", Governor: GovNone, DurationS: 1, Seed: 1},
		{Platform: PlatformOdroidXU3, Workload: "quake", Governor: GovNone, DurationS: 1, Seed: 1},
		{Platform: PlatformOdroidXU3, Workload: "3dmark", Governor: "psychic", DurationS: 1, Seed: 1},
		{Platform: PlatformOdroidXU3, Workload: "3dmark", Governor: GovNone, Seed: 1},
		{Platform: PlatformOdroidXU3, Workload: "3dmark", Governor: GovStepwise, DurationS: 1, Seed: 1},
		{Platform: PlatformNexus6P, Workload: "paper.io", Governor: GovIPA, DurationS: 1, Seed: 1},
		{Platform: PlatformNexus6P, Workload: "paper.io", CPUGovernor: "warp", DurationS: 1, Seed: 1},
	}
	for _, spec := range bad {
		if _, err := New(spec); err == nil {
			t.Errorf("spec %+v should be rejected", spec)
		}
	}
	good := Scenario{Platform: PlatformNexus6P, Workload: "paper.io", DurationS: 1, Seed: 1}
	if _, err := New(good, WithStep(-1)); err == nil {
		t.Error("WithStep(-1) should be rejected")
	}
	if _, err := New(good, WithObserver(nil)); err == nil {
		t.Error("WithObserver(nil) should be rejected")
	}
}

func TestSeriesLookupsReportOK(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	spec := Scenario{Platform: PlatformNexus6P, Workload: "paper.io", Governor: GovNone, DurationS: 1, Seed: 1}
	eng, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s, ok := eng.NodeTempSeries("pkg"); !ok || s.Len() == 0 {
		t.Errorf("pkg node series missing (ok=%v)", ok)
	}
	if _, ok := eng.NodeTempSeries("volcano"); ok {
		t.Error("unknown node name should report ok=false")
	}
	if _, ok := eng.RailPowerSeries(Rail(99)); ok {
		t.Error("unknown rail should report ok=false")
	}
	if s, ok := eng.MaxTempSeries(); !ok || s.Len() == 0 {
		t.Errorf("max temp series missing (ok=%v)", ok)
	}

	bare, err := New(spec, WithoutRecording())
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := bare.MaxTempSeries(); ok {
		t.Error("recording disabled: series lookups should report ok=false")
	}
	if _, ok := bare.NodeTempSeries("pkg"); ok {
		t.Error("recording disabled: node lookups should report ok=false")
	}
}
