package mobisim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"slices"
	"strings"

	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Built-in platform names a Scenario accepts; spec-defined platforms
// (Scenario.PlatformSpec or RegisterPlatform) extend the set.
const (
	// PlatformNexus6P is the Snapdragon 810 phone of the paper's
	// Section III.
	PlatformNexus6P = "nexus6p"
	// PlatformOdroidXU3 is the Exynos 5422 board of Section IV.
	PlatformOdroidXU3 = "odroid-xu3"
)

// WorkloadGen declares a stochastic foreground workload: a seeded
// phase-based demand generator (bursty, periodic, ramp or perturb).
// The "gen-<kind>" workload names run each kind's default spec; set
// Scenario.Generator to tune the knobs.
type WorkloadGen = workload.GenSpec

// GenWorkloadPrefix starts the generator-backed workload names
// ("gen-bursty", "gen-periodic", "gen-ramp", "gen-perturb").
const GenWorkloadPrefix = "gen-"

// genWorkloadKind maps a foreground workload name to its generator
// kind; ok is false for the hand-calibrated app models.
func genWorkloadKind(foreground string) (string, bool) {
	kind, found := strings.CutPrefix(foreground, GenWorkloadPrefix)
	if !found {
		return "", false
	}
	for _, k := range workload.GenKinds() {
		if kind == k {
			return kind, true
		}
	}
	return "", false
}

// Thermal-management arm names a Scenario accepts.
const (
	// GovAppAware is the paper's application-aware governor (Section IV).
	GovAppAware = "appaware"
	// GovIPA is ARM intelligent power allocation (Odroid-calibrated).
	GovIPA = "ipa"
	// GovStepwise is the Linux trip-point governor (Nexus-calibrated).
	GovStepwise = "stepwise"
	// GovNone disables thermal management (the "without throttling" arm).
	GovNone = "none"
)

// CPUfreq governor family names a Scenario accepts (CPUGovernor field).
const (
	// CPUGovStock is the platform's realistic stock set: interactive on
	// the CPU clusters plus the platform's GPU governor. It is the
	// default when CPUGovernor is empty.
	CPUGovStock = "stock"
	// CPUGovInteractive runs the Android interactive governor on every
	// domain.
	CPUGovInteractive = "interactive"
	// CPUGovOndemand runs the classic Linux load tracker on every domain.
	CPUGovOndemand = "ondemand"
	// CPUGovPerformance pins every domain at maximum frequency.
	CPUGovPerformance = "performance"
	// CPUGovPowersave pins every domain at minimum frequency.
	CPUGovPowersave = "powersave"
	// CPUGovConservative steps one OPP at a time on every domain.
	CPUGovConservative = "conservative"
)

// WorkloadSuffixBML appended to a workload name adds the
// basicmath-large background task to the scenario.
const WorkloadSuffixBML = "+bml"

// Prewarm starting temperatures of the paper's measured runs, applied
// when a Scenario leaves PrewarmC at 0.
const (
	// NexusPrewarmC matches Section III: a handled, unlocked phone
	// (Figure 1's traces start near 36°C).
	NexusPrewarmC = 36
	// OdroidPrewarmC matches Section IV: the board idling near 50°C
	// with the fan off.
	OdroidPrewarmC = 50
)

// Scenario is a declarative, JSON-serializable simulation scenario:
// everything that identifies a run. Engine-level knobs that do not
// change what is simulated (observers, DAQ attachment) are functional
// options on New instead.
//
// The zero value is not runnable; fill at least Platform, Workload and
// DurationS, then Normalize and Validate (ParseScenario and
// LoadScenario do both).
type Scenario struct {
	// Name optionally labels the scenario in logs and output files.
	Name string `json:"name,omitempty"`
	// Platform is PlatformNexus6P, PlatformOdroidXU3, the name of a
	// platform registered with RegisterPlatform, or the name of the
	// inline PlatformSpec below.
	Platform string `json:"platform"`
	// PlatformSpec optionally embeds a full declarative platform
	// description, making the scenario self-contained: no preset and no
	// prior registration needed. When set, Platform must be empty
	// (Normalize fills it) or equal to the spec's name.
	PlatformSpec *PlatformSpec `json:"platform_spec,omitempty"`
	// Workload is the foreground app ("3dmark", "nenamark", "paper.io",
	// "stickman-hook", "amazon", "hangouts", "facebook", or a generated
	// "gen-bursty", "gen-periodic", "gen-ramp", "gen-perturb"), with an
	// optional "+bml" suffix adding the basicmath-large background task.
	Workload string `json:"workload"`
	// Generator optionally tunes a generated foreground workload; valid
	// only when Workload names a "gen-*" kind, which must match
	// Generator.Kind. Nil runs the kind's default spec.
	Generator *WorkloadGen `json:"generator,omitempty"`
	// Governor is the thermal-management arm (GovAppAware, GovIPA,
	// GovStepwise, GovNone). Empty selects the platform's realistic
	// default: stepwise on the phone, IPA on the board.
	Governor string `json:"governor,omitempty"`
	// CPUGovernor selects the CPUfreq governor family for all domains;
	// empty or CPUGovStock keeps the platform's stock set.
	CPUGovernor string `json:"cpu_governor,omitempty"`
	// LimitC is the appaware thermal limit in °C; 0 keeps the platform
	// default. Ignored by the other arms.
	LimitC float64 `json:"limit_c,omitempty"`
	// DurationS is the simulated duration in seconds (required > 0).
	DurationS float64 `json:"duration_s"`
	// Seed drives every random stream of the scenario.
	Seed int64 `json:"seed"`
	// PrewarmC starts all thermal nodes at this temperature. 0 selects
	// the platform's paper-matched default (NexusPrewarmC or
	// OdroidPrewarmC); negative starts at ambient with no prewarm.
	PrewarmC float64 `json:"prewarm_c,omitempty"`
	// StepS overrides the integration step (0 = engine default, 1 ms).
	StepS float64 `json:"step_s,omitempty"`
	// TracePeriodS overrides the observer/trace sampling period
	// (0 = engine default, 100 ms).
	TracePeriodS float64 `json:"trace_period_s,omitempty"`
	// TaskWindowS overrides the per-task power averaging window
	// (0 = engine default, 1 s).
	TaskWindowS float64 `json:"task_window_s,omitempty"`
	// ModelOnlyBML decimates the background task's real kernel
	// execution to zero, keeping only the analytic model — what sweep
	// runs use for throughput. Modeled iterations (the reported metric)
	// are unaffected.
	ModelOnlyBML bool `json:"model_only_bml,omitempty"`
}

// foregroundWorkloads lists the accepted foreground app names: the
// hand-calibrated app models plus the seeded generator kinds.
var foregroundWorkloads = []string{
	"3dmark", "nenamark",
	"paper.io", "stickman-hook", "amazon", "hangouts", "facebook",
	"gen-bursty", "gen-periodic", "gen-ramp", "gen-perturb",
}

// KnownWorkloads returns the accepted foreground workload names; each
// also accepts the "+bml" suffix.
func KnownWorkloads() []string {
	return append([]string(nil), foregroundWorkloads...)
}

// KnownPlatforms returns the accepted platform names: the built-in
// presets plus any platforms registered with RegisterPlatform.
func KnownPlatforms() []string {
	return append([]string{PlatformNexus6P, PlatformOdroidXU3}, RegisteredPlatforms()...)
}

// KnownGovernors returns the accepted thermal-management arm names.
func KnownGovernors() []string {
	return []string{GovAppAware, GovIPA, GovStepwise, GovNone}
}

// SplitWorkload splits a workload mix into the foreground name and
// whether the "+bml" background task is attached.
func SplitWorkload(workload string) (foreground string, withBML bool) {
	return strings.CutSuffix(workload, WorkloadSuffixBML)
}

// Normalize fills defaults in place: the platform name from an inline
// spec, the platform-matched thermal arm when Governor is empty, the
// stock CPUfreq set when CPUGovernor is empty, and the paper-matched
// prewarm temperature when PrewarmC is 0. Spec-defined platforms
// default to GovNone (the calibrated kernel governors are preset-
// specific) and to no prewarm (ambient start). It is idempotent and
// leaves fields it cannot resolve (unknown platform) untouched for
// Validate to reject.
func (s *Scenario) Normalize() {
	if s.CPUGovernor == "" {
		s.CPUGovernor = CPUGovStock
	}
	if s.PlatformSpec != nil {
		s.PlatformSpec.Normalize()
		if s.Platform == "" {
			s.Platform = s.PlatformSpec.Name
		}
	}
	if s.Generator != nil {
		if kind, ok := genWorkloadKind(s.firstWorkload()); ok && s.Generator.Kind == "" {
			s.Generator.Kind = kind
		}
		s.Generator.Normalize()
	}
	switch s.Platform {
	case PlatformNexus6P:
		if s.Governor == "" {
			s.Governor = GovStepwise
		}
		if s.PrewarmC == 0 {
			s.PrewarmC = NexusPrewarmC
		}
	case PlatformOdroidXU3:
		if s.Governor == "" {
			s.Governor = GovIPA
		}
		if s.PrewarmC == 0 {
			s.PrewarmC = OdroidPrewarmC
		}
	default:
		if s.Governor == "" && (s.PlatformSpec != nil || platformKnown(s.Platform)) {
			s.Governor = GovNone
		}
	}
}

// firstWorkload returns the foreground name without the "+bml" suffix.
func (s Scenario) firstWorkload() string {
	fg, _ := SplitWorkload(s.Workload)
	return fg
}

// cloneRefs returns a copy whose pointer fields (inline platform spec,
// generator knobs) are deep-copied. Builders that take a Scenario by
// value clone first, so their normalization can never write through a
// spec the caller shares across scenarios.
func (s Scenario) cloneRefs() Scenario {
	if s.PlatformSpec != nil {
		ps := s.PlatformSpec.Clone()
		s.PlatformSpec = &ps
	}
	if s.Generator != nil {
		g := *s.Generator
		g.Base = slices.Clone(g.Base)
		s.Generator = &g
	}
	return s
}

// Step/window bounds Validate enforces. The engine integrates at steps
// in (0, MaxStepS]; the facade additionally refuses sub-microsecond
// steps and unboundedly long averaging windows, which the engine would
// accept only to drown in step count or window capacity.
const (
	// MinStepS is the finest integration step the facade accepts.
	MinStepS = 1e-6
	// MaxStepS mirrors the engine's upper step bound.
	MaxStepS = 0.1
	// MaxWindowSteps bounds task_window_s / step_s: the engine
	// preallocates one window slot per step per task.
	MaxWindowSteps = 1_000_000
	// MaxDurationSteps bounds duration_s / step_s, mirroring the
	// engine's own run bound so a Validate-accepted spec can never fail
	// duration-to-step conversion mid-sweep.
	MaxDurationSteps = sim.MaxRunSteps
)

// Validate checks the scenario without building anything. It accepts
// both normalized and raw specs (an empty Governor is only valid after
// Normalize resolved it, so Validate rejects it).
//
// Validate is deliberately at least as strict as the engine: any spec
// it accepts must also be accepted by New, so spec errors surface at
// the API boundary instead of mid-sweep (the fuzz harness pins this
// contract).
func (s Scenario) Validate() error {
	if s.PlatformSpec != nil {
		if isBuiltinPlatform(s.PlatformSpec.Name) {
			return fmt.Errorf("mobisim: inline platform spec name %q is reserved by a built-in preset", s.PlatformSpec.Name)
		}
		if err := s.PlatformSpec.Validate(); err != nil {
			return err
		}
		// An empty Platform inherits the inline spec's name (what
		// Normalize fills in); only a conflicting name is an error.
		if s.Platform != "" && s.Platform != s.PlatformSpec.Name {
			return fmt.Errorf("mobisim: scenario platform %q does not match its inline spec %q (leave platform empty to inherit it)",
				s.Platform, s.PlatformSpec.Name)
		}
		// An inline spec may coincide with a registered name only when
		// it is the same spec: two result sets sharing a platform label
		// must come from the same physical model.
		if reg, ok := registeredSpec(s.PlatformSpec.Name); ok {
			norm := s.PlatformSpec.Clone()
			norm.Normalize()
			if !reflect.DeepEqual(reg, norm) {
				return fmt.Errorf("mobisim: inline platform spec %q differs from the spec registered under that name", s.PlatformSpec.Name)
			}
		}
	} else if !platformKnown(s.Platform) {
		return fmt.Errorf("mobisim: unknown platform %q (want %s, or register a spec)", s.Platform, strings.Join(KnownPlatforms(), ", "))
	}
	fg, _ := SplitWorkload(s.Workload)
	known := false
	for _, w := range foregroundWorkloads {
		if fg == w {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("mobisim: unknown workload %q (want one of %s, optionally with %q)",
			s.Workload, strings.Join(foregroundWorkloads, ", "), WorkloadSuffixBML)
	}
	if s.Generator != nil {
		kind, ok := genWorkloadKind(fg)
		if !ok {
			return fmt.Errorf("mobisim: generator knobs set, but workload %q is not a generated (%s*) workload", s.Workload, GenWorkloadPrefix)
		}
		if s.Generator.Kind != kind {
			return fmt.Errorf("mobisim: generator kind %q does not match workload %q (leave kind empty to inherit it)", s.Generator.Kind, s.Workload)
		}
		if err := s.Generator.Validate(); err != nil {
			return err
		}
	}
	switch s.Governor {
	case GovAppAware, GovNone:
	case GovIPA:
		// IPA's control temperature and power weights are Odroid
		// calibrations; on other platforms they would be silently
		// meaningless rather than wrong-looking.
		if s.Platform != PlatformOdroidXU3 {
			return fmt.Errorf("mobisim: governor %q is calibrated for %s only, not %s", GovIPA, PlatformOdroidXU3, s.Platform)
		}
	case GovStepwise:
		// The 44°C trip targets the Nexus package sensor; the Odroid
		// prewarms above it, so the arm would throttle from t=0.
		if s.Platform != PlatformNexus6P {
			return fmt.Errorf("mobisim: governor %q is calibrated for %s only, not %s", GovStepwise, PlatformNexus6P, s.Platform)
		}
	default:
		return fmt.Errorf("mobisim: unknown governor arm %q (want %s)", s.Governor, strings.Join(KnownGovernors(), ", "))
	}
	switch s.CPUGovernor {
	case "", CPUGovStock, CPUGovInteractive, CPUGovOndemand, CPUGovPerformance, CPUGovPowersave, CPUGovConservative:
	default:
		return fmt.Errorf("mobisim: unknown cpu governor %q", s.CPUGovernor)
	}
	if !(s.DurationS > 0) || math.IsInf(s.DurationS, 0) { // rejects NaN too
		return fmt.Errorf("mobisim: scenario duration must be positive and finite, got %v", s.DurationS)
	}
	for _, f := range []struct {
		name  string
		value float64
	}{
		{"limit_c", s.LimitC},
		{"prewarm_c", s.PrewarmC},
		{"step_s", s.StepS},
		{"trace_period_s", s.TracePeriodS},
		{"task_window_s", s.TaskWindowS},
	} {
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			return fmt.Errorf("mobisim: %s must be finite, got %v", f.name, f.value)
		}
	}
	if s.StepS < 0 || s.TracePeriodS < 0 || s.TaskWindowS < 0 {
		return fmt.Errorf("mobisim: step/trace/window overrides must be >= 0 (0 = default)")
	}
	if s.StepS != 0 && (s.StepS < MinStepS || s.StepS > MaxStepS) {
		return fmt.Errorf("mobisim: step_s %v out of range [%v, %v]", s.StepS, MinStepS, MaxStepS)
	}
	step := s.StepS
	if step == 0 {
		step = sim.DefaultStepS
	}
	if s.TracePeriodS != 0 && s.TracePeriodS < step {
		return fmt.Errorf("mobisim: trace_period_s %v below the %v integration step", s.TracePeriodS, step)
	}
	if s.TaskWindowS != 0 && s.TaskWindowS < step {
		return fmt.Errorf("mobisim: task_window_s %v below the %v integration step", s.TaskWindowS, step)
	}
	window := s.TaskWindowS
	if window == 0 {
		window = sim.DefaultTaskWindowS
	}
	if window/step > MaxWindowSteps {
		return fmt.Errorf("mobisim: task_window_s %v spans %.0f steps of %v, exceeding the %d-step window bound",
			s.TaskWindowS, window/step, step, MaxWindowSteps)
	}
	// The math.MaxInt term mirrors the engine's 32-bit-platform guard,
	// where the int step count saturates far below MaxDurationSteps.
	if steps := s.DurationS / step; steps > MaxDurationSteps || steps > float64(math.MaxInt) {
		return fmt.Errorf("mobisim: duration_s %v spans %.0f steps of %v, exceeding the %.0f-step run bound",
			s.DurationS, steps, step, math.Min(MaxDurationSteps, float64(math.MaxInt)))
	}
	// Mirror the builder exactly: it converts a nonzero LimitC with
	// thermal.ToKelvin, and appaware rejects negative Kelvin limits.
	if s.Governor == GovAppAware && s.LimitC != 0 && thermal.ToKelvin(s.LimitC) < 0 {
		return fmt.Errorf("mobisim: limit_c %v is below absolute zero", s.LimitC)
	}
	return nil
}

// ParseScenario decodes, normalizes and validates a JSON scenario.
// Unknown fields are rejected so typos fail loudly instead of silently
// simulating the wrong thing.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("mobisim: decode scenario: %w", err)
	}
	if dec.More() {
		return Scenario{}, fmt.Errorf("mobisim: trailing data after scenario document")
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadScenario reads and parses a scenario spec file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("mobisim: %w", err)
	}
	s, err := ParseScenario(data)
	if err != nil {
		return Scenario{}, fmt.Errorf("mobisim: %s: %w", path, err)
	}
	return s, nil
}

// JSON renders the scenario as indented JSON with a trailing newline.
// Encoding a parsed scenario and re-parsing it is stable: Normalize is
// idempotent, so decode → normalize → encode converges after one pass.
func (s Scenario) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("mobisim: encode scenario: %w", err)
	}
	return append(out, '\n'), nil
}
