package mobisim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/sweep"
)

// Matrix is the declarative, JSON-serializable sweep counterpart of
// Scenario: per-axis value lists whose cartesian product (times seed
// replicates) expands into many scenarios. RunSweep executes the
// expansion on a parallel worker pool and folds the results into
// per-cell statistics.
type Matrix struct {
	// Platforms, Workloads, Governors and LimitsC are the sweep axes;
	// each needs at least one value. Platforms accepts the built-in
	// presets and any name registered via RegisterPlatform; Workloads
	// accepts the app models and the generated "gen-*" kinds, whose
	// seed replicates explore the stochastic space.
	Platforms []string  `json:"platforms"`
	Workloads []string  `json:"workloads"`
	Governors []string  `json:"governors"`
	LimitsC   []float64 `json:"limits_c"`
	// Replicates is the number of seed replicates per parameter cell
	// (0 defaults to 1).
	Replicates int `json:"replicates,omitempty"`
	// DurationS is the simulated duration of every scenario.
	DurationS float64 `json:"duration_s"`
	// BaseSeed anchors per-replicate seed derivation.
	BaseSeed int64 `json:"base_seed,omitempty"`
}

// Normalize fills defaults in place: one replicate, and the limits
// axis collapsed to the platform default when absent. Idempotent.
func (m *Matrix) Normalize() {
	if m.Replicates == 0 {
		m.Replicates = 1
	}
	if len(m.LimitsC) == 0 {
		m.LimitsC = []float64{0}
	}
}

// MaxMatrixScenarios bounds how many scenarios one matrix may expand
// into; larger sweeps should be sharded into multiple matrices.
const MaxMatrixScenarios = 65536

// limitAware reports whether a governor arm reads Scenario.LimitC.
// Validation, size accounting and expansion all collapse the limits
// axis for every other arm through this one predicate, so the rule
// cannot drift between them when a new limit-aware arm is added.
func limitAware(governor string) bool { return governor == GovAppAware }

// expandedSize returns the post-collapse scenario count in closed form
// (float to sidestep int overflow on hostile axis lengths): limit-aware
// arms sweep every limit, all others run one cell per limits axis.
func (m Matrix) expandedSize() float64 {
	aware := 0.0
	for _, g := range m.Governors {
		if limitAware(g) {
			aware++
		}
	}
	agnostic := float64(len(m.Governors)) - aware
	limits := float64(len(m.LimitsC))
	if limits == 0 {
		limits = 1
	}
	cellBase := float64(len(m.Platforms)) * float64(len(m.Workloads)) * float64(m.Replicates)
	return cellBase * (aware*limits + agnostic)
}

// Validate checks the matrix cell by cell: every (platform, workload,
// governor, limit) combination the expansion will run must itself be a
// valid scenario, so a sweep can never fail mid-run on a cell the
// engine rejects (e.g. a platform-incompatible governor arm or an
// absolute-zero appaware limit). The expansion size is bounded by
// MaxMatrixScenarios.
func (m Matrix) Validate() error {
	// The scalar axis/replicate/duration rules live in the expansion
	// engine; the facade layers its per-cell probes and the
	// collapsed-size bound below on top. The sweep-level check runs on
	// a limit-collapsed copy (its scalar rules don't depend on limit
	// values, only on the axis being non-empty), so no matrix is ever
	// rejected for its raw limits-axis product — the authoritative size
	// check is the collapsed one below, which counts what RunSweep's
	// expansion actually executes. Nothing here materializes the
	// expansion: RunSweep expands exactly once, after Validate.
	sm := m.sweepMatrix()
	if len(sm.LimitsC) > 0 {
		sm.LimitsC = []float64{0}
	}
	if err := sm.Validate(); err != nil {
		return fmt.Errorf("mobisim: %w", err)
	}
	if size := m.expandedSize(); size > MaxMatrixScenarios {
		return fmt.Errorf("mobisim: matrix expands to %.0f scenarios, exceeding the %d-scenario bound", size, MaxMatrixScenarios)
	}
	// The limits axis is checked directly, not only through the per-cell
	// probes below: limit-agnostic matrices collapse the axis before
	// probing, which would otherwise let a NaN/Inf limit value through
	// unexamined.
	for i, l := range m.LimitsC {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("mobisim: limits_c[%d] must be finite, got %v", i, l)
		}
	}
	for _, p := range m.Platforms {
		if _, err := LookupPlatform(p, 0); err != nil {
			return err
		}
	}
	for _, g := range m.Governors {
		known := false
		for _, k := range KnownGovernors() {
			if g == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("mobisim: unknown governor arm %q in matrix", g)
		}
	}
	for _, p := range m.Platforms {
		for _, w := range m.Workloads {
			for _, g := range m.Governors {
				// Limit-agnostic arms run with the limits axis collapsed
				// to the platform default: one probe covers the cell group.
				limits := m.LimitsC
				if !limitAware(g) {
					limits = []float64{0}
				}
				for _, l := range limits {
					probe := Scenario{Platform: p, Workload: w, Governor: g, LimitC: l, DurationS: m.DurationS, Seed: 1}
					if err := probe.Validate(); err != nil {
						return fmt.Errorf("mobisim: matrix cell %s/%s/%s: %w", p, w, g, err)
					}
				}
			}
		}
	}
	return nil
}

// sweepMatrix converts to the internal expansion engine's matrix.
func (m Matrix) sweepMatrix() sweep.Matrix {
	return sweep.Matrix{
		Platforms:  m.Platforms,
		Workloads:  m.Workloads,
		Governors:  m.Governors,
		LimitsC:    m.LimitsC,
		Replicates: m.Replicates,
		DurationS:  m.DurationS,
		BaseSeed:   m.BaseSeed,
	}
}

// Size returns the number of scenarios the matrix expands into before
// limit-axis collapsing.
func (m Matrix) Size() int {
	m.Normalize()
	return m.sweepMatrix().Size()
}

// ExpandedSize returns the number of scenarios RunSweep will actually
// execute, after collapsing the limits axis for limit-agnostic arms
// (0 for an invalid matrix). The count is closed-form: nothing is
// expanded or allocated.
func (m Matrix) ExpandedSize() int {
	m.Normalize()
	if err := m.Validate(); err != nil {
		return 0
	}
	return int(m.expandedSize())
}

// ParseMatrix decodes, normalizes and validates a JSON matrix spec.
// Unknown fields are rejected.
func ParseMatrix(data []byte) (Matrix, error) {
	var m Matrix
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Matrix{}, fmt.Errorf("mobisim: decode matrix: %w", err)
	}
	if dec.More() {
		return Matrix{}, fmt.Errorf("mobisim: trailing data after matrix document")
	}
	m.Normalize()
	if err := m.Validate(); err != nil {
		return Matrix{}, err
	}
	return m, nil
}

// LoadMatrix reads and parses a matrix spec file.
func LoadMatrix(path string) (Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Matrix{}, fmt.Errorf("mobisim: %w", err)
	}
	m, err := ParseMatrix(data)
	if err != nil {
		return Matrix{}, fmt.Errorf("mobisim: %s: %w", path, err)
	}
	return m, nil
}

// JSON renders the matrix as indented JSON with a trailing newline.
func (m Matrix) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("mobisim: encode matrix: %w", err)
	}
	return append(out, '\n'), nil
}

// expandScenarios expands the matrix, collapsing the limits axis for
// limit-agnostic governor arms: only appaware reads LimitC, so sweeping
// limits under ipa/stepwise/none would run bitwise-identical duplicate
// simulations and emit duplicate summary rows.
func expandScenarios(m sweep.Matrix) ([]sweep.Scenario, error) {
	var aware, agnostic []string
	for _, g := range m.Governors {
		if limitAware(g) {
			aware = append(aware, g)
		} else {
			agnostic = append(agnostic, g)
		}
	}
	if len(aware) == 0 || len(agnostic) == 0 {
		if len(agnostic) > 0 {
			m.LimitsC = []float64{0} // platform default; one cell per arm
		}
		return m.Scenarios()
	}
	awareM, agnosticM := m, m
	awareM.Governors = aware
	agnosticM.Governors = agnostic
	agnosticM.LimitsC = []float64{0}
	scenarios, err := awareM.Scenarios()
	if err != nil {
		return nil, err
	}
	tail, err := agnosticM.Scenarios()
	if err != nil {
		return nil, err
	}
	for i := range tail {
		tail[i].Index = len(scenarios) + i
	}
	return append(scenarios, tail...), nil
}

// RunScenarioMetrics runs one scenario in constant memory (recording
// disabled, background kernels model-only) and returns its scalar
// metrics. It is the sweep pool's unit of work, exported so external
// pools can reuse it.
func RunScenarioMetrics(ctx context.Context, spec Scenario, opts ...Option) (map[string]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec.ModelOnlyBML = true
	eng, err := New(spec, append([]Option{WithoutRecording()}, opts...)...)
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return eng.Metrics(), nil
}

// SweepStat summarizes one metric across the seed replicates of a cell.
type SweepStat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// SweepSummary is one aggregated parameter cell.
type SweepSummary struct {
	Platform   string               `json:"platform"`
	Workload   string               `json:"workload"`
	Governor   string               `json:"governor"`
	LimitC     float64              `json:"limit_c"`
	DurationS  float64              `json:"duration_s"`
	Replicates int                  `json:"replicates"`
	Metrics    map[string]SweepStat `json:"metrics"`
	// MetricNames lists the metric keys sorted, for deterministic CSV
	// rendering (JSON maps already encode with sorted keys).
	MetricNames []string `json:"-"`
}

// SweepResult is one raw scenario result.
type SweepResult struct {
	Index     int                `json:"index"`
	Platform  string             `json:"platform"`
	Workload  string             `json:"workload"`
	Governor  string             `json:"governor"`
	LimitC    float64            `json:"limit_c"`
	Replicate int                `json:"replicate"`
	Seed      int64              `json:"seed"`
	Metrics   map[string]float64 `json:"metrics"`
}

// SweepOutput is a completed sweep: per-cell summaries and, when
// requested, the raw per-scenario results.
type SweepOutput struct {
	Summaries []SweepSummary `json:"summaries"`
	Results   []SweepResult  `json:"results,omitempty"`
}

// SweepConfig tunes sweep execution.
type SweepConfig struct {
	// Workers is the pool concurrency; <= 0 uses GOMAXPROCS. Results
	// are byte-identical for any worker count.
	Workers int
	// IncludeRaw retains raw per-scenario results in the output.
	IncludeRaw bool
	// BatchWidth switches the sweep onto the batched lockstep executor:
	// scenarios are grouped by platform, packed into batches of at most
	// BatchWidth lanes, and stepped together through the fused
	// structure-of-arrays kernel on pooled, reusable engines. 0 keeps
	// the sequential per-scenario path (the oracle the batched path is
	// differentially tested against); widths above 1 trade a larger
	// per-worker working set for fused-kernel throughput, with 8
	// (DefaultBatchWidth) the sweet spot on typical L1 sizes. Output
	// bytes are identical for every width, including 0.
	BatchWidth int
	// WarmStart groups limit-aware cells by prefix content key
	// (Scenario.PrefixKey), simulates each group's shared warm-up
	// prefix once, snapshots the engine, and forks every member from
	// the restored state instead of re-simulating the prefix per cell
	// — the big win on replicate-heavy matrices sweeping the limits
	// axis. Cells that do not group (limit-agnostic arms, singleton
	// groups) run on the cold path selected by BatchWidth. Output
	// bytes are identical with and without WarmStart (the sweep tests
	// pin this); only execution cost changes.
	WarmStart bool
}

// RunSweep expands the matrix and executes it on the parallel worker
// pool, streaming per-scenario aggregates (scenario runs are
// constant-memory: no trace series are materialized). It stops early
// on the first scenario error or on context cancellation.
func RunSweep(ctx context.Context, m Matrix, cfg SweepConfig) (*SweepOutput, error) {
	m.Normalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	scenarios, err := expandScenarios(m.sweepMatrix())
	if err != nil {
		return nil, fmt.Errorf("mobisim: %w", err)
	}
	var results []sweep.Result
	if cfg.WarmStart {
		results, err = runWarmSweep(ctx, scenarios, cfg)
	} else if cfg.BatchWidth > 0 {
		runner := &batchRunner{}
		pool := &sweep.BatchPool{Workers: cfg.Workers, Width: cfg.BatchWidth, RunFunc: runner.run}
		results, err = pool.Run(ctx, scenarios)
	} else {
		pool := &sweep.Pool{Workers: cfg.Workers, RunFunc: runSweepScenario}
		results, err = pool.Run(ctx, scenarios)
	}
	if err != nil {
		return nil, err
	}
	return buildSweepOutput(results, cfg.IncludeRaw)
}

// buildSweepOutput folds raw per-scenario results into the sweep's
// serialization contract. RunSweep and AggregateCells both terminate
// here, so a cell set aggregated externally (the simd daemon, a shard
// merger) produces byte-identical output to an in-process sweep.
func buildSweepOutput(results []sweep.Result, includeRaw bool) (*SweepOutput, error) {
	summaries, err := sweep.Aggregate(results)
	if err != nil {
		return nil, err
	}

	out := &SweepOutput{}
	for _, s := range summaries {
		ms := make(map[string]SweepStat, len(s.Metrics))
		for name, st := range s.Metrics {
			ms[name] = SweepStat{Mean: st.Mean, Min: st.Min, Max: st.Max, P50: st.P50, P95: st.P95}
		}
		out.Summaries = append(out.Summaries, SweepSummary{
			Platform: s.Platform, Workload: s.Workload, Governor: s.Governor,
			LimitC: s.LimitC, DurationS: s.DurationS, Replicates: s.Replicates,
			Metrics:     ms,
			MetricNames: append([]string(nil), s.MetricNames...),
		})
	}
	if includeRaw {
		for _, r := range results {
			out.Results = append(out.Results, SweepResult{
				Index: r.Scenario.Index, Platform: r.Scenario.Platform,
				Workload: r.Scenario.Workload, Governor: r.Scenario.Governor,
				LimitC: r.Scenario.LimitC, Replicate: r.Scenario.Replicate,
				Seed: r.Scenario.Seed, Metrics: r.Metrics,
			})
		}
	}
	return out, nil
}

// runSweepScenario adapts one expanded sweep point to the facade's
// constant-memory scenario runner.
func runSweepScenario(ctx context.Context, sc sweep.Scenario) (map[string]float64, error) {
	return RunScenarioMetrics(ctx, Scenario{
		Platform:  sc.Platform,
		Workload:  sc.Workload,
		Governor:  sc.Governor,
		LimitC:    sc.LimitC,
		DurationS: sc.DurationS,
		Seed:      sc.Seed,
	})
}

// EncodeJSON writes the sweep output as indented JSON — the stable
// serialization contract cmd/sweep emits and the golden test pins.
func (o *SweepOutput) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o)
}

// EncodeCSV writes the per-cell summaries as CSV, one row per
// (cell, metric) pair in matrix order with sorted metric names.
func (o *SweepOutput) EncodeCSV(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString("platform,workload,governor,limit_c,duration_s,replicates,metric,mean,min,max,p50,p95\n")
	for _, s := range o.Summaries {
		for _, name := range s.MetricNames {
			st := s.Metrics[name]
			fmt.Fprintf(&b, "%s,%s,%s,%g,%g,%d,%s,%g,%g,%g,%g,%g\n",
				s.Platform, s.Workload, s.Governor, s.LimitC, s.DurationS,
				s.Replicates, name, st.Mean, st.Min, st.Max, st.P50, st.P95)
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}
