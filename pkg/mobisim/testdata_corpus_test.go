package mobisim

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestPlatformSpecCorpus pins the checked-in platform spec corpus:
// every testdata/platforms/*.json must parse, validate, compile for
// multiple seeds, and actually run — a short scenario per platform
// with both a calibrated app and a generated workload. This is the
// test behind CI's spec-smoke gate: a corpus file that drifts out of
// the schema fails here, not in a user's sweep.
func TestPlatformSpecCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "platforms")
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("platform corpus has %d specs, want >= 3 (%s)", len(paths), dir)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := ParsePlatformSpec(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if want := filepath.Base(path); spec.Name+".json" != want {
				t.Errorf("spec name %q does not match file name %s", spec.Name, want)
			}
			for _, seed := range []int64{0, 1, 99} {
				if _, err := spec.Compile(seed); err != nil {
					t.Fatalf("compile seed %d: %v", seed, err)
				}
			}
			sc := Scenario{
				PlatformSpec: &spec,
				Workload:     "gen-bursty",
				Governor:     GovAppAware,
				DurationS:    1,
				Seed:         2,
			}
			sc.Normalize()
			if err := sc.Validate(); err != nil {
				t.Fatalf("scenario validate: %v", err)
			}
			metrics, err := RunScenarioMetrics(context.Background(), sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if metrics[MetricPeakC] <= 0 {
				t.Errorf("run produced no peak temperature: %v", metrics)
			}
			sc.Workload = "paper.io+bml"
			sc.Governor = GovNone
			if _, err := RunScenarioMetrics(context.Background(), sc); err != nil {
				t.Fatalf("calibrated-app run: %v", err)
			}
		})
	}
}

// TestGoldenTraceReplayable pins the checked-in generated-workload
// trace end to end: the golden CSV must parse and replay.
func TestGoldenTraceReplayable(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "traces", "gen_bursty_seed1.csv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := ParseReplayCSV(string(data))
	if err != nil {
		t.Fatalf("golden trace does not parse: %v", err)
	}
	if len(samples) != 600 {
		t.Errorf("golden trace has %d samples, want 600", len(samples))
	}
}
