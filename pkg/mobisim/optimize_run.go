package mobisim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"repro/internal/explore"
	"repro/internal/platform"
	"repro/internal/sweep"
)

// CellCache is an external content-addressed metric store the
// optimizer consults before simulating a cell and fills after — the
// same CellKey-keyed contract the simd daemon's result cache
// implements. Get and Put are only ever called from the coordinating
// goroutine, so implementations need no internal locking for the
// optimizer's sake. Cached metrics must be the exact values a
// simulation would produce: the search trajectory is then independent
// of cache state, and only the provenance fields of the output
// (cached flags, hit counters) reflect the session.
type CellCache interface {
	Get(key uint64) (map[string]float64, bool)
	Put(key uint64, metrics map[string]float64)
}

// CellRunner evaluates fully-resolved scenario cells somewhere other
// than the local engine pool — the seam behind `explore -daemon`,
// where a generation's cells are submitted to the simd daemon as one
// job. Implementations must return metrics[i] for specs[i] carrying
// the exact values a local simulation of that cell would produce;
// the single permitted deviation is replacing a non-finite value with
// a different non-finite value (transports without NaN, like JSON,
// do this), which cannot change the search trajectory because
// replicate aggregation drops non-finite aggregates either way.
type CellRunner interface {
	RunScenarios(ctx context.Context, specs []Scenario) ([]map[string]float64, error)
}

// OptimizeConfig tunes how Optimize executes; none of its fields can
// change the search trajectory, only how fast it is produced.
type OptimizeConfig struct {
	// Workers is the execution-unit concurrency; <= 0 uses GOMAXPROCS.
	Workers int
	// BatchWidth is the lockstep lane count per batch; 0 selects
	// DefaultBatchWidth, 1 is the scalar-equivalent single-lane
	// configuration. Negative widths are rejected.
	BatchWidth int
	// NoWarmStart disables prefix warm-start grouping; the zero value
	// keeps it on (neighbors along a limit axis share their prefix, so
	// warm groups are the common case in a search).
	NoWarmStart bool
	// Cache optionally shares results across searches and with sweep
	// runs (cmd/explore wires the simd result cache here).
	Cache CellCache
	// Runner, when set, evaluates each generation's cache-miss cells
	// instead of the local engine pool (cmd/explore wires the simd
	// daemon client here). Workers, BatchWidth and NoWarmStart are
	// then the remote executor's concern.
	Runner CellRunner
}

// Optimize runs the design-space search an OptimizeSpec declares: a
// seeded hill-climb (internal/explore) whose candidates are evaluated
// as lockstep batches on pooled engines, deduplicated by CellKey in a
// persistent per-search store. Identical spec (and seed) produces a
// bitwise-identical SearchResult regardless of Workers, BatchWidth and
// warm-start configuration; with a Cache attached, only provenance
// fields (cached flags and hit counters) can differ.
func Optimize(ctx context.Context, spec OptimizeSpec, cfg OptimizeConfig) (*SearchResult, error) {
	spec.Scenario = spec.Scenario.cloneRefs()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.BatchWidth < 0 {
		return nil, fmt.Errorf("mobisim: optimize batch width must be >= 0, got %d", cfg.BatchWidth)
	}
	width := cfg.BatchWidth
	if width == 0 {
		width = DefaultBatchWidth
	}
	plan, err := buildSearchPlan(spec)
	if err != nil {
		return nil, err
	}
	ev := &cellEvaluator{
		plan:     plan,
		cfg:      cfg,
		width:    width,
		store:    make(map[uint64]map[string]float64),
		minimize: spec.Objective.Goal == GoalMinimize,
	}
	trace, err := explore.Search(ctx, plan.space, plan.start, ev.evaluate, explore.Config{
		Seed:           spec.Seed,
		Neighbors:      spec.Neighbors,
		MaxGenerations: spec.MaxGenerations,
		Patience:       spec.Patience,
		MinDelta:       spec.MinDelta,
	})
	if err != nil {
		return nil, err
	}
	return ev.result(trace)
}

// cellEvaluator is the explore.EvalFunc behind Optimize: it
// materializes candidates, resolves their replicate cells against the
// dedup store and the external cache, and simulates the remaining
// cells as warm packs and lockstep batches on one shared engine pool.
type cellEvaluator struct {
	plan   *searchPlan
	cfg    OptimizeConfig
	width  int
	runner BatchRunner
	// store is the deduplicating candidate store: CellKey → metrics
	// for every cell resolved during this search.
	store    map[uint64]map[string]float64
	minimize bool

	cells     int // cells simulated
	storeHits int // cells served by the in-search store
	cacheHits int // cells served by the external cache
}

// missJob is one cell that must be simulated this generation.
type missJob struct {
	key  uint64
	spec Scenario
}

// evaluate runs one generation of candidates.
func (e *cellEvaluator) evaluate(ctx context.Context, gen int, pts []explore.Point) ([]explore.Eval, error) {
	reps := e.plan.spec.Replicates
	evals := make([]explore.Eval, len(pts))
	type candCells struct {
		keys      []uint64
		simulated bool
	}
	cands := make([]*candCells, len(pts))
	var misses []missJob
	missIdx := make(map[uint64]int)

	for pi, pt := range pts {
		s, err := e.plan.candidate(pt)
		if err != nil {
			evals[pi] = explore.Eval{Invalid: err.Error()}
			continue
		}
		if err := s.Validate(); err != nil {
			evals[pi] = explore.Eval{Invalid: err.Error()}
			continue
		}
		cc := &candCells{keys: make([]uint64, reps)}
		for r := 0; r < reps; r++ {
			cell := s
			if r > 0 {
				// Replicate 0 keeps the base seed (sharing cell keys
				// with plain runs of the same scenario); later
				// replicates derive theirs like sweep replicates do.
				cell.Seed = sweep.DeriveSeed(e.plan.base.Seed, r)
			}
			key, err := cell.CellKey()
			if err != nil {
				evals[pi] = explore.Eval{Invalid: err.Error()}
				cc = nil
				break
			}
			cc.keys[r] = key
			if _, ok := e.store[key]; ok {
				e.storeHits++
				continue
			}
			if e.cfg.Cache != nil {
				if m, ok := e.cfg.Cache.Get(key); ok {
					e.store[key] = m
					e.cacheHits++
					continue
				}
			}
			cc.simulated = true
			if _, ok := missIdx[key]; !ok {
				missIdx[key] = len(misses)
				misses = append(misses, missJob{key: key, spec: cell})
			}
		}
		cands[pi] = cc
	}

	if len(misses) > 0 {
		var results []map[string]float64
		var err error
		if e.cfg.Runner != nil {
			specs := make([]Scenario, len(misses))
			for i, mj := range misses {
				specs[i] = mj.spec
			}
			results, err = e.cfg.Runner.RunScenarios(ctx, specs)
			if err == nil && len(results) != len(misses) {
				err = fmt.Errorf("mobisim: optimize runner returned %d metric sets for %d cells", len(results), len(misses))
			}
		} else {
			results, err = e.runCells(ctx, misses)
		}
		if err != nil {
			return nil, err
		}
		for i, mj := range misses {
			e.store[mj.key] = results[i]
			if e.cfg.Cache != nil {
				e.cfg.Cache.Put(mj.key, results[i])
			}
		}
		e.cells += len(misses)
	}

	for pi := range pts {
		cc := cands[pi]
		if cc == nil {
			continue // invalid, already recorded
		}
		agg := aggregateReplicates(e.store, cc.keys)
		ev := explore.Eval{Key: cc.keys[0], Cached: !cc.simulated, Metrics: agg}
		obj, ok := agg[e.plan.spec.Objective.Metric]
		if !ok {
			ev.Invalid = fmt.Sprintf("objective metric %q missing or non-finite in this scenario's results", e.plan.spec.Objective.Metric)
			evals[pi] = ev
			continue
		}
		feasible := true
		for _, c := range e.plan.spec.Constraints {
			v, ok := agg[c.Metric]
			if !ok || (c.Min != nil && v < *c.Min) || (c.Max != nil && v > *c.Max) {
				feasible = false
				break
			}
		}
		if e.minimize {
			obj = 0 - obj
		}
		ev.Objective = obj
		ev.Feasible = feasible
		evals[pi] = ev
	}
	return evals, nil
}

// runCells simulates the generation's deduplicated misses through the
// exported batch seam: PlanBatchUnits groups cells by thermal-topology
// compatibility (only topology-equal lanes may share a lockstep batch)
// with limit-aware cells sharing a warm-up prefix as warm-start packs,
// and all units execute on the shared worker pool writing disjoint
// result slots. Grouping changes wall-clock only: every executor is
// byte-exact, so the returned metrics are independent of unit shape
// and worker interleaving.
func (e *cellEvaluator) runCells(ctx context.Context, jobs []missJob) ([]map[string]float64, error) {
	out := make([]map[string]float64, len(jobs))
	specs := make([]Scenario, len(jobs))
	for i, j := range jobs {
		specs[i] = j.spec
	}
	units, err := PlanBatchUnits(specs, e.width, !e.cfg.NoWarmStart)
	if err != nil {
		return nil, err
	}
	tasks := make([]func(ctx context.Context) error, len(units))
	for ui := range units {
		u := units[ui]
		tasks[ui] = func(ctx context.Context) error {
			metrics, err := e.runner.RunUnit(ctx, specs, u, e.width, BatchRunOptions{})
			if err != nil {
				return err
			}
			if len(metrics) != len(u.Idx) {
				return fmt.Errorf("mobisim: optimize unit returned %d metric sets for %d cells", len(metrics), len(u.Idx))
			}
			for k, ji := range u.Idx {
				out[ji] = metrics[k]
			}
			return nil
		}
	}
	pool := &sweep.TaskPool{Workers: e.cfg.Workers}
	if err := pool.Run(ctx, tasks); err != nil {
		return nil, err
	}
	return out, nil
}

// thermalTopoKey hashes the platform content that must be equal for
// two engines to share a lockstep batch: the thermal network (nodes,
// couplings) and the ambient. Equal keys imply equal normalized JSON
// of those sections, which implies batch compatibility; unequal keys
// merely split cells into separate batches, which never changes
// output bytes.
func thermalTopoKey(s Scenario) (uint64, error) {
	ps, err := resolvedPlatformSpec(s)
	if err != nil {
		return 0, fmt.Errorf("mobisim: batch plan: %w", err)
	}
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	if err := enc.Encode(struct {
		AmbientC  float64                 `json:"ambient_c"`
		Nodes     []platform.NodeJSON     `json:"nodes"`
		Couplings []platform.CouplingJSON `json:"couplings"`
	}{ps.AmbientC, ps.Nodes, ps.Couplings}); err != nil {
		return 0, fmt.Errorf("mobisim: batch topology key: %w", err)
	}
	return h.Sum64(), nil
}

// aggregateReplicates means each metric across the replicate cells, in
// sorted metric order for bitwise-reproducible float accumulation.
// Metrics missing from any replicate are dropped (a metric either
// exists for a scenario or does not; replicate-dependent presence
// would make feasibility depend on the replicate count). Non-finite
// aggregates are dropped too, keeping every recorded trace
// JSON-encodable.
func aggregateReplicates(store map[uint64]map[string]float64, keys []uint64) map[string]float64 {
	first := store[keys[0]]
	names := make([]string, 0, len(first))
	for name := range first {
		names = append(names, name)
	}
	sort.Strings(names)
	agg := make(map[string]float64, len(names))
	for _, name := range names {
		sum := 0.0
		ok := true
		for _, key := range keys {
			v, present := store[key][name]
			if !present {
				ok = false
				break
			}
			sum += v
		}
		if !ok {
			continue
		}
		if mean := sum / float64(len(keys)); !math.IsNaN(mean) && !math.IsInf(mean, 0) {
			agg[name] = mean
		}
	}
	return agg
}

// SearchResultSchema versions the search-trace serialization.
const SearchResultSchema = "mobisim-explore/1"

// ParamValue is one parameter assignment of a candidate: numeric
// parameters carry Value, categorical parameters carry Choice.
type ParamValue struct {
	Param  string   `json:"param"`
	Value  *float64 `json:"value,omitempty"`
	Choice string   `json:"choice,omitempty"`
}

// SearchCandidate is one evaluated candidate of the trajectory.
// Objective is in the spec's own orientation (a minimized metric
// reports the metric, not its negation). Cached is provenance, not
// trajectory: it reflects whether this session simulated the
// candidate.
type SearchCandidate struct {
	Gen       int                `json:"gen"`
	Index     int                `json:"index"`
	Params    []ParamValue       `json:"params"`
	CellKey   string             `json:"cell_key,omitempty"`
	Objective float64            `json:"objective"`
	Feasible  bool               `json:"feasible"`
	Invalid   string             `json:"invalid,omitempty"`
	Cached    bool               `json:"cached,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// SearchGeneration is one generation of the trajectory.
type SearchGeneration struct {
	Gen           int               `json:"gen"`
	Improved      bool              `json:"improved"`
	BestObjective float64           `json:"best_objective"`
	Candidates    []SearchCandidate `json:"candidates"`
}

// SearchResult is the complete search trace plus its outcome — the
// stable serialization cmd/explore emits and the golden test pins.
// Trajectory fields are bitwise-identical for identical specs; the
// provenance fields (Cells, StoreHits, CacheHits and the candidates'
// Cached flags) describe this session's execution.
type SearchResult struct {
	Schema       string             `json:"schema"`
	Name         string             `json:"name,omitempty"`
	Metric       string             `json:"metric"`
	Goal         string             `json:"goal"`
	Seed         int64              `json:"seed"`
	Generations  []SearchGeneration `json:"generations"`
	Best         *SearchCandidate   `json:"best,omitempty"`
	BestScenario *Scenario          `json:"best_scenario,omitempty"`
	Evaluated    int                `json:"evaluated"`
	Cells        int                `json:"cells"`
	StoreHits    int                `json:"store_hits"`
	CacheHits    int                `json:"cache_hits"`
	Converged    bool               `json:"converged"`
	StopReason   string             `json:"stop_reason"`
}

// result folds the explore trace into the output schema.
func (e *cellEvaluator) result(trace *explore.Trace) (*SearchResult, error) {
	spec := e.plan.spec
	r := &SearchResult{
		Schema:     SearchResultSchema,
		Name:       spec.Name,
		Metric:     spec.Objective.Metric,
		Goal:       spec.Objective.Goal,
		Seed:       spec.Seed,
		Evaluated:  trace.Evaluated,
		Cells:      e.cells,
		StoreHits:  e.storeHits,
		CacheHits:  e.cacheHits,
		Converged:  trace.Converged,
		StopReason: trace.StopReason,
	}
	for _, g := range trace.Generations {
		sg := SearchGeneration{Gen: g.Gen, Improved: g.Improved, BestObjective: e.raw(g.BestObjective)}
		for _, c := range g.Candidates {
			sg.Candidates = append(sg.Candidates, e.candidateOut(c))
		}
		r.Generations = append(r.Generations, sg)
	}
	if trace.Best != nil {
		best := e.candidateOut(*trace.Best)
		r.Best = &best
		s, err := e.plan.candidate(trace.Best.Point)
		if err != nil {
			return nil, err
		}
		r.BestScenario = &s
	}
	return r, nil
}

// raw converts the loop's higher-is-better objective back to the
// spec's orientation (subtraction avoids a "-0" rendering).
func (e *cellEvaluator) raw(signed float64) float64 {
	if e.minimize {
		return 0 - signed
	}
	return signed
}

func (e *cellEvaluator) candidateOut(c explore.Candidate) SearchCandidate {
	out := SearchCandidate{
		Gen:       c.Gen,
		Index:     c.Index,
		Params:    e.plan.paramValues(c.Point),
		Objective: e.raw(c.Eval.Objective),
		Feasible:  c.Eval.Feasible,
		Invalid:   c.Eval.Invalid,
		Cached:    c.Eval.Cached,
		Metrics:   c.Eval.Metrics,
	}
	if c.Eval.Key != 0 {
		out.CellKey = fmt.Sprintf("%016x", c.Eval.Key)
	}
	return out
}

// EncodeJSON writes the search result as indented JSON — the stable
// serialization contract cmd/explore emits and the golden test pins.
func (r *SearchResult) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// EncodeCSV writes the trajectory as CSV, one row per candidate in
// trajectory order: the parameter columns, then provenance, objective
// and the sorted union of recorded metrics.
func (r *SearchResult) EncodeCSV(w io.Writer) error {
	names := make(map[string]bool)
	var params []string
	for _, g := range r.Generations {
		for _, c := range g.Candidates {
			if params == nil {
				for _, pv := range c.Params {
					params = append(params, pv.Param)
				}
			}
			for name := range c.Metrics {
				names[name] = true
			}
		}
	}
	metricNames := make([]string, 0, len(names))
	for name := range names {
		metricNames = append(metricNames, name)
	}
	sort.Strings(metricNames)

	var b bytes.Buffer
	b.WriteString("gen,index")
	for _, p := range params {
		b.WriteByte(',')
		b.WriteString(p)
	}
	b.WriteString(",cell_key,feasible,cached,objective")
	for _, name := range metricNames {
		b.WriteByte(',')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	for _, g := range r.Generations {
		for _, c := range g.Candidates {
			fmt.Fprintf(&b, "%d,%d", c.Gen, c.Index)
			for _, pv := range c.Params {
				if pv.Value != nil {
					fmt.Fprintf(&b, ",%g", *pv.Value)
				} else {
					fmt.Fprintf(&b, ",%s", pv.Choice)
				}
			}
			fmt.Fprintf(&b, ",%s,%t,%t,%g", c.CellKey, c.Feasible, c.Cached, c.Objective)
			for _, name := range metricNames {
				if v, ok := c.Metrics[name]; ok {
					fmt.Fprintf(&b, ",%g", v)
				} else {
					b.WriteByte(',')
				}
			}
			b.WriteByte('\n')
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}
