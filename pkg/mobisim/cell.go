package mobisim

import (
	"fmt"

	"repro/internal/sweep"
)

// Cell-level sweep access.
//
// RunSweep treats a matrix as one opaque unit of work; services that
// cache, dedupe or shard simulations need the unit underneath it: the
// cell — one fully-resolved scenario run, addressed by its content
// hash. ExpandCells exposes the exact expansion RunSweep executes
// (including the limit-axis collapse for limit-agnostic arms), each
// cell carrying the executable spec and its CellKey; AggregateCells is
// the exact inverse tail, folding per-cell metric sets back into the
// sweep serialization contract. An external executor that runs every
// cell of ExpandCells through the engine and feeds the metrics to
// AggregateCells produces output byte-identical to RunSweep — the
// invariant the simd daemon's content-addressed cache is built on.

// Cell is one expanded sweep point together with its content identity.
type Cell struct {
	// Index is the cell's position in the expanded matrix (0 for a
	// standalone scenario cell).
	Index int
	// Spec is the fully-resolved scenario this cell executes — for
	// matrix expansions, the same engine-facing spec RunSweep's
	// executors build (normalized, ModelOnlyBML set).
	Spec Scenario
	// Replicate numbers the seed replicate within the parameter cell.
	Replicate int
	// Key is Spec.CellKey(): the stable content hash of the executed
	// configuration. Equal keys mean byte-identical results.
	Key uint64
}

// ExpandCells expands a matrix into its content-addressed cells in the
// exact order and shape RunSweep executes: the limits axis collapsed
// for limit-agnostic governor arms, seeds derived per replicate, and
// each cell's spec identical to what the sweep executors run.
func ExpandCells(m Matrix) ([]Cell, error) {
	m.Normalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	scenarios, err := expandScenarios(m.sweepMatrix())
	if err != nil {
		return nil, fmt.Errorf("mobisim: %w", err)
	}
	cells := make([]Cell, len(scenarios))
	for i, sc := range scenarios {
		spec := warmSpec(sc)
		key, err := spec.CellKey()
		if err != nil {
			return nil, fmt.Errorf("mobisim: cell %d (%s): %w", sc.Index, sc.Key(), err)
		}
		cells[i] = Cell{Index: sc.Index, Spec: spec, Replicate: sc.Replicate, Key: key}
	}
	return cells, nil
}

// CellForScenario wraps one standalone scenario as a content-addressed
// cell: normalized, validated, and keyed. Unlike matrix expansion it
// does not force ModelOnlyBML — the cell executes exactly the spec the
// caller submitted, and the key addresses exactly that.
func CellForScenario(s Scenario) (Cell, error) {
	c := s.cloneRefs()
	c.Normalize()
	if err := c.Validate(); err != nil {
		return Cell{}, err
	}
	key, err := c.CellKey()
	if err != nil {
		return Cell{}, err
	}
	return Cell{Spec: c, Key: key}, nil
}

// sweepScenario maps the cell back to the aggregation layer's identity:
// the axis fields plus replicate and seed, exactly as RunSweep's
// expansion labels its results.
func (c Cell) sweepScenario() sweep.Scenario {
	return sweep.Scenario{
		Index:     c.Index,
		Platform:  c.Spec.Platform,
		Workload:  c.Spec.Workload,
		Governor:  c.Spec.Governor,
		LimitC:    c.Spec.LimitC,
		DurationS: c.Spec.DurationS,
		Replicate: c.Replicate,
		Seed:      c.Spec.Seed,
	}
}

// AggregateCells folds per-cell metric sets (metrics[i] belongs to
// cells[i]) into a SweepOutput through the same aggregation tail
// RunSweep uses, so external executors produce byte-identical output.
func AggregateCells(cells []Cell, metrics []map[string]float64, includeRaw bool) (*SweepOutput, error) {
	if len(metrics) != len(cells) {
		return nil, fmt.Errorf("mobisim: aggregate: %d metric sets for %d cells", len(metrics), len(cells))
	}
	results := make([]sweep.Result, len(cells))
	for i, c := range cells {
		results[i] = sweep.Result{Scenario: c.sweepScenario(), Metrics: metrics[i]}
	}
	return buildSweepOutput(results, includeRaw)
}
