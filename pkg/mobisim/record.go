package mobisim

import (
	"fmt"

	"repro/internal/workload"
)

// ReplaySample is one row of a recorded demand trace.
type ReplaySample = workload.ReplaySample

// RecordForegroundTrace builds the scenario's foreground workload
// fresh and records its demand schedule over the scenario duration on
// a periodS grid — the capture half of the record→replay loop. The
// samples round-trip bitwise through EncodeReplayCSV and
// ParseReplayCSV, so a generated (or hand-calibrated) workload becomes
// a portable trace file a perturb-kind generator can later mutate.
func RecordForegroundTrace(spec Scenario, periodS float64) ([]ReplaySample, error) {
	spec = spec.cloneRefs()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fg, _ := SplitWorkload(spec.Workload)
	app, err := foregroundApp(fg, spec.Generator, spec.Seed)
	if err != nil {
		return nil, err
	}
	samples, err := workload.RecordTrace(app, spec.DurationS, periodS)
	if err != nil {
		return nil, fmt.Errorf("mobisim: %w", err)
	}
	return samples, nil
}

// EncodeReplayCSV renders samples in the "time_s,cpu_hz,gpu_hz" CSV
// format ParseReplayCSV reads back bitwise.
func EncodeReplayCSV(samples []ReplaySample) []byte {
	return workload.EncodeReplayCSV(samples)
}

// ParseReplayCSV parses a recorded demand trace into samples (header
// row optional).
func ParseReplayCSV(csv string) ([]ReplaySample, error) {
	app, err := workload.ParseReplayCSV("trace", csv, false)
	if err != nil {
		return nil, fmt.Errorf("mobisim: %w", err)
	}
	return app.Samples(), nil
}
