package mobisim

import (
	"bytes"
	"context"
	"math"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func fptr(v float64) *float64 { return &v }

// testOptimizeSpec is a small limit/cpu-governor search on the Odroid:
// 5x3 grid, a few generations, sub-second cells.
func testOptimizeSpec() OptimizeSpec {
	return OptimizeSpec{
		Name: "test-search",
		Scenario: Scenario{
			Platform:  PlatformOdroidXU3,
			Workload:  "gen-bursty+bml",
			Governor:  GovAppAware,
			DurationS: 2,
			Seed:      42,
		},
		Objective:   Objective{Metric: MetricBMLIterations, Goal: GoalMaximize},
		Constraints: []Constraint{{Metric: MetricPeakC, Max: fptr(90)}},
		Mutations: []Mutation{
			{Param: ParamLimitC, Min: 55, Max: 75, Step: 5},
			{Param: ParamCPUGovernor, Values: []string{CPUGovStock, CPUGovPerformance, CPUGovConservative}},
		},
		Neighbors:      3,
		MaxGenerations: 3,
		Patience:       2,
		Seed:           7,
	}
}

func optimizeJSON(t *testing.T, spec OptimizeSpec, cfg OptimizeConfig) (*SearchResult, []byte) {
	t.Helper()
	res, err := Optimize(context.Background(), spec, cfg)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	return res, buf.Bytes()
}

// TestOptimizeDeterministicAcrossWorkers pins the headline: identical
// seed produces a byte-identical search trace regardless of worker
// count and GOMAXPROCS.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	_, one := optimizeJSON(t, testOptimizeSpec(), OptimizeConfig{Workers: 1})
	runtime.GOMAXPROCS(8)
	_, eight := optimizeJSON(t, testOptimizeSpec(), OptimizeConfig{Workers: 8})
	runtime.GOMAXPROCS(old)
	if !bytes.Equal(one, eight) {
		t.Fatalf("search trace differs between workers=1/GOMAXPROCS=1 and workers=8/GOMAXPROCS=8:\n%s\n---\n%s", one, eight)
	}
}

// TestOptimizeExecutorEquivalence pins that the execution shape —
// scalar-equivalent single-lane batches, wide batches, odd widths,
// warm-start on or off — never changes output bytes.
func TestOptimizeExecutorEquivalence(t *testing.T) {
	_, base := optimizeJSON(t, testOptimizeSpec(), OptimizeConfig{})
	for _, cfg := range []OptimizeConfig{
		{BatchWidth: 1, NoWarmStart: true},
		{BatchWidth: 8},
		{BatchWidth: 3, Workers: 4},
		{NoWarmStart: true},
	} {
		_, got := optimizeJSON(t, testOptimizeSpec(), cfg)
		if !bytes.Equal(base, got) {
			t.Fatalf("config %+v changes the search trace:\n%s\n---\n%s", cfg, base, got)
		}
	}
}

// TestOptimizeTraceProperties checks the trajectory invariants on one
// run: monotone best-so-far, feasible candidates satisfying every
// declared constraint, the best candidate being the feasible optimum,
// and every evaluated candidate carrying a cell key and finite metrics.
func TestOptimizeTraceProperties(t *testing.T) {
	spec := testOptimizeSpec()
	res, _ := optimizeJSON(t, spec, OptimizeConfig{})

	if res.Schema != SearchResultSchema {
		t.Fatalf("schema %q, want %q", res.Schema, SearchResultSchema)
	}
	if res.Best == nil {
		t.Fatal("search found no feasible candidate")
	}
	evaluated := 0
	prevBest := math.Inf(-1)
	sawFeasible := false
	bestSeen := math.Inf(-1)
	for gi, g := range res.Generations {
		if g.Gen != gi {
			t.Fatalf("generation %d labeled %d", gi, g.Gen)
		}
		for ci, c := range g.Candidates {
			evaluated++
			if c.Index != ci {
				t.Fatalf("gen %d candidate %d labeled %d", gi, ci, c.Index)
			}
			if len(c.Params) != len(spec.Mutations) {
				t.Fatalf("candidate has %d params, want %d", len(c.Params), len(spec.Mutations))
			}
			if c.Invalid != "" {
				if c.Feasible {
					t.Fatalf("invalid candidate marked feasible: %+v", c)
				}
				continue
			}
			if c.CellKey == "" {
				t.Fatalf("evaluated candidate lacks a cell key: %+v", c)
			}
			for name, v := range c.Metrics {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite recorded metric %s=%v", name, v)
				}
			}
			if c.Feasible {
				sawFeasible = true
				if v, ok := c.Metrics[MetricPeakC]; !ok || v > 90 {
					t.Fatalf("feasible candidate violates peak_c<=90: %+v", c)
				}
				if c.Objective > bestSeen {
					bestSeen = c.Objective
				}
			}
		}
		if sawFeasible {
			if g.BestObjective < prevBest {
				t.Fatalf("best objective worsened: gen %d %v -> %v", gi, prevBest, g.BestObjective)
			}
			if g.BestObjective != bestSeen {
				t.Fatalf("gen %d best %v != running feasible max %v", gi, g.BestObjective, bestSeen)
			}
			prevBest = g.BestObjective
		}
	}
	if evaluated != res.Evaluated {
		t.Fatalf("trace holds %d candidates, result says %d", evaluated, res.Evaluated)
	}
	if res.Best.Objective != bestSeen {
		t.Fatalf("best objective %v != feasible max %v", res.Best.Objective, bestSeen)
	}
	if res.BestScenario == nil {
		t.Fatal("best candidate lacks its scenario")
	}
	if err := res.BestScenario.Validate(); err != nil {
		t.Fatalf("best scenario fails validation: %v", err)
	}
}

// TestOptimizeMinimize covers the minimize orientation: best-so-far is
// monotone non-increasing in the spec's own metric direction.
func TestOptimizeMinimize(t *testing.T) {
	spec := testOptimizeSpec()
	spec.Objective = Objective{Metric: MetricPeakC, Goal: GoalMinimize}
	spec.Constraints = nil
	res, _ := optimizeJSON(t, spec, OptimizeConfig{})
	if res.Best == nil {
		t.Fatal("no feasible candidate")
	}
	prev := math.Inf(1)
	low := math.Inf(1)
	for _, g := range res.Generations {
		for _, c := range g.Candidates {
			if c.Feasible && c.Objective < low {
				low = c.Objective
			}
		}
		if g.BestObjective > prev {
			t.Fatalf("minimized best objective worsened: %v -> %v", prev, g.BestObjective)
		}
		prev = g.BestObjective
	}
	if res.Best.Objective != low {
		t.Fatalf("best %v != feasible min %v", res.Best.Objective, low)
	}
}

// TestOptimizeCandidateValidity enumerates the entire search space of
// a platform-mutating spec: every grid point must materialize into a
// scenario that passes Validate, with a platform spec that passes
// PlatformSpec.Validate, and platform names must be distinct exactly
// when platform content is.
func TestOptimizeCandidateValidity(t *testing.T) {
	spec := OptimizeSpec{
		Scenario: Scenario{
			Platform:  PlatformOdroidXU3,
			Workload:  "gen-bursty+bml",
			Governor:  GovAppAware,
			DurationS: 1,
			Seed:      5,
		},
		Objective: Objective{Metric: MetricBMLIterations},
		Mutations: []Mutation{
			{Param: "platform.ambient_c", Min: 20, Max: 30, Step: 5},
			{Param: "platform.domain.big.ceff_f", Min: 2e-10, Max: 8e-10, Step: 3e-10},
			{Param: ParamLimitC, Min: 60, Max: 70, Step: 10},
		},
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	plan, err := buildSearchPlan(spec)
	if err != nil {
		t.Fatalf("buildSearchPlan: %v", err)
	}
	nameToContent := make(map[string]string)
	for a := 0; a < plan.space.Nums[0].Points(); a++ {
		for b := 0; b < plan.space.Nums[1].Points(); b++ {
			for c := 0; c < plan.space.Nums[2].Points(); c++ {
				pt := plan.start.Clone()
				pt.Nums[0], pt.Nums[1], pt.Nums[2] = a, b, c
				s, err := plan.candidate(pt)
				if err != nil {
					t.Fatalf("candidate %v: %v", pt, err)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("candidate %v fails scenario validation: %v", pt, err)
				}
				if s.PlatformSpec == nil {
					t.Fatalf("platform-mutating candidate %v lacks an inline spec", pt)
				}
				if err := s.PlatformSpec.Validate(); err != nil {
					t.Fatalf("candidate %v platform spec invalid: %v", pt, err)
				}
				content, err := s.PlatformSpec.JSON()
				if err != nil {
					t.Fatalf("candidate %v platform spec encode: %v", pt, err)
				}
				if prev, seen := nameToContent[s.PlatformSpec.Name]; seen {
					if prev != string(content) {
						t.Fatalf("platform name %q maps to two different contents", s.PlatformSpec.Name)
					}
				} else {
					nameToContent[s.PlatformSpec.Name] = string(content)
				}
			}
		}
	}
	// 3 ambient x 3 ceff platform contents; limit_c never renames.
	if len(nameToContent) != 9 {
		t.Fatalf("expected 9 distinct platform names, got %d", len(nameToContent))
	}
}

// memCellCache is an in-memory CellCache for provenance tests.
type memCellCache struct {
	m    map[uint64]map[string]float64
	gets int
	puts int
}

func newMemCellCache() *memCellCache {
	return &memCellCache{m: make(map[uint64]map[string]float64)}
}

func (c *memCellCache) Get(key uint64) (map[string]float64, bool) {
	c.gets++
	m, ok := c.m[key]
	return m, ok
}

func (c *memCellCache) Put(key uint64, metrics map[string]float64) {
	c.puts++
	c.m[key] = metrics
}

// clearProvenance zeroes the fields that legitimately differ between
// cold and cache-warm sessions, leaving only the trajectory.
func clearProvenance(r *SearchResult) {
	r.Cells, r.StoreHits, r.CacheHits = 0, 0, 0
	for gi := range r.Generations {
		for ci := range r.Generations[gi].Candidates {
			r.Generations[gi].Candidates[ci].Cached = false
		}
	}
	if r.Best != nil {
		r.Best.Cached = false
	}
}

// TestOptimizeCellCache pins the cache contract: a warm cache serves
// every cell (zero simulations) and cannot change the trajectory.
func TestOptimizeCellCache(t *testing.T) {
	cache := newMemCellCache()
	cold, err := Optimize(context.Background(), testOptimizeSpec(), OptimizeConfig{Cache: cache})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if cold.Cells == 0 || cold.CacheHits != 0 {
		t.Fatalf("cold run: cells=%d cacheHits=%d", cold.Cells, cold.CacheHits)
	}
	if cache.puts != cold.Cells {
		t.Fatalf("cache received %d puts for %d simulated cells", cache.puts, cold.Cells)
	}
	warm, err := Optimize(context.Background(), testOptimizeSpec(), OptimizeConfig{Cache: cache})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Cells != 0 {
		t.Fatalf("warm run simulated %d cells", warm.Cells)
	}
	if warm.CacheHits == 0 {
		t.Fatal("warm run reports no cache hits")
	}
	clearProvenance(cold)
	clearProvenance(warm)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cache state changed the trajectory:\ncold: %+v\nwarm: %+v", cold, warm)
	}
}

// TestOptimizeReplicates checks replicate aggregation stays
// deterministic and uses distinct derived seeds per replicate.
func TestOptimizeReplicates(t *testing.T) {
	spec := testOptimizeSpec()
	spec.Scenario.DurationS = 1
	spec.Replicates = 2
	spec.MaxGenerations = 2
	_, a := optimizeJSON(t, spec, OptimizeConfig{Workers: 1})
	_, b := optimizeJSON(t, spec, OptimizeConfig{Workers: 8, BatchWidth: 3})
	if !bytes.Equal(a, b) {
		t.Fatal("replicated search trace depends on execution config")
	}
	res, _ := optimizeJSON(t, spec, OptimizeConfig{})
	// Two replicates per candidate: the cell count must be even and
	// larger than the candidate count.
	if res.Cells == 0 || res.Cells%2 != 0 {
		t.Fatalf("replicate cell count %d not a multiple of 2", res.Cells)
	}
}

func TestOptimizeContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Optimize(ctx, testOptimizeSpec(), OptimizeConfig{}); err == nil {
		t.Fatal("canceled context not reported")
	}
}

// TestOptimizeSpecRoundTrip pins the JSON discipline: parse → encode →
// parse converges, and Normalize is idempotent.
func TestOptimizeSpecRoundTrip(t *testing.T) {
	spec := testOptimizeSpec()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := spec.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	spec2, err := ParseOptimize(out)
	if err != nil {
		t.Fatalf("ParseOptimize: %v", err)
	}
	if !reflect.DeepEqual(spec, spec2) {
		t.Fatalf("round trip drifted:\nfirst:  %+v\nsecond: %+v", spec, spec2)
	}
	norm := spec2
	norm.Normalize()
	if !reflect.DeepEqual(spec2, norm) {
		t.Fatal("Normalize is not idempotent")
	}
}

// TestOptimizeSpecRejects covers the validator's rejection families.
func TestOptimizeSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		edit func(*OptimizeSpec)
		want string
	}{
		{"unknown objective metric", func(o *OptimizeSpec) { o.Objective.Metric = "fps" }, "unknown objective metric"},
		{"unknown goal", func(o *OptimizeSpec) { o.Objective.Goal = "extremize" }, "unknown objective goal"},
		{"empty mutations", func(o *OptimizeSpec) { o.Mutations = nil }, "at least one mutation"},
		{"duplicate param", func(o *OptimizeSpec) {
			o.Mutations = append(o.Mutations, Mutation{Param: ParamLimitC, Min: 1, Max: 2, Step: 1})
		}, "duplicate mutation param"},
		{"unknown param", func(o *OptimizeSpec) {
			o.Mutations = []Mutation{{Param: "platform.fan_rpm", Min: 1, Max: 2, Step: 1}}
		}, "unknown numeric mutation param"},
		{"unknown domain", func(o *OptimizeSpec) {
			o.Mutations = []Mutation{{Param: "platform.domain.npu.ceff_f", Min: 1e-10, Max: 2e-10, Step: 1e-10}}
		}, "has no domain"},
		{"zero step", func(o *OptimizeSpec) { o.Mutations[0].Step = 0 }, "step must be > 0"},
		{"inverted range", func(o *OptimizeSpec) { o.Mutations[0].Min, o.Mutations[0].Max = 75, 55 }, "min 75 exceeds max 55"},
		{"mixed shape", func(o *OptimizeSpec) { o.Mutations[0].Values = []string{"x"} }, "mixes categorical"},
		{"bad categorical value", func(o *OptimizeSpec) {
			o.Mutations[1].Values = []string{"turbo"}
		}, "unknown value"},
		{"contradictory constraint", func(o *OptimizeSpec) {
			o.Constraints = []Constraint{{Metric: MetricPeakC, Min: fptr(80), Max: fptr(60)}}
		}, "contradictory bounds"},
		{"unbounded constraint", func(o *OptimizeSpec) {
			o.Constraints = []Constraint{{Metric: MetricPeakC}}
		}, "needs a min or max"},
		{"nan min delta", func(o *OptimizeSpec) { o.MinDelta = math.NaN() }, "min delta"},
		{"replicates bound", func(o *OptimizeSpec) { o.Replicates = MaxReplicates + 1 }, "replicates"},
		{"limit below absolute zero", func(o *OptimizeSpec) {
			o.Mutations[0].Min, o.Mutations[0].Max, o.Mutations[0].Step = -400, 60, 20
		}, "invalid scenario"},
		{"miscalibrated governor arm", func(o *OptimizeSpec) {
			o.Mutations = append(o.Mutations, Mutation{Param: ParamGovernor, Values: []string{GovAppAware, GovStepwise}})
		}, "invalid scenario"},
	}
	for _, tc := range cases {
		spec := testOptimizeSpec()
		spec.Normalize()
		tc.edit(&spec)
		err := spec.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestOptimizeGoldenTrace pins the committed search-trace fixture:
// running the committed spec must reproduce testdata/explore/
// trace_golden.json byte for byte. Regenerate after an intentional
// trajectory change with
//
//	go run ./cmd/explore -spec pkg/mobisim/testdata/explore/spec.json \
//	  > pkg/mobisim/testdata/explore/trace_golden.json
func TestOptimizeGoldenTrace(t *testing.T) {
	spec, err := LoadOptimize("testdata/explore/spec.json")
	if err != nil {
		t.Fatal(err)
	}
	_, got := optimizeJSON(t, spec, OptimizeConfig{})
	want, err := os.ReadFile("testdata/explore/trace_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("search trace drifted from the committed golden fixture\n(see the regeneration command in this test's comment)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestOptimizeCSV checks the CSV rendering: stable header, one row per
// candidate.
func TestOptimizeCSV(t *testing.T) {
	res, _ := optimizeJSON(t, testOptimizeSpec(), OptimizeConfig{})
	var buf bytes.Buffer
	if err := res.EncodeCSV(&buf); err != nil {
		t.Fatalf("EncodeCSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != res.Evaluated+1 {
		t.Fatalf("CSV has %d lines, want header + %d candidates", len(lines), res.Evaluated)
	}
	if !strings.HasPrefix(lines[0], "gen,index,limit_c,cpu_governor,cell_key,feasible,cached,objective") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	var buf2 bytes.Buffer
	if err := res.EncodeCSV(&buf2); err != nil {
		t.Fatalf("EncodeCSV again: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("CSV rendering is not deterministic")
	}
}
