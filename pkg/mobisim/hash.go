package mobisim

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/platform"
)

// Content-addressed sweep-cell identity.
//
// A sweep cell's identity is the fully-resolved scenario content, not
// its spelling: the same device described by an inline spec, a
// registered spec, or a built-in preset name hashes identically,
// because the platform contribution is the normalized spec JSON rather
// than the reference used to reach it. Labels (Scenario.Name) never
// affect identity.
//
// Two keys are derived per cell:
//
//   - CellKey identifies the complete cell — every field that can
//     change simulation output participates.
//   - PrefixKey identifies the shared warm-up prefix: it is CellKey
//     with the thermal limit (LimitC) and run length (DurationS)
//     removed. Cells that agree on PrefixKey follow bitwise-identical
//     trajectories until the first limit-dependent control action, so
//     a sweep executor may simulate the prefix once, snapshot, and
//     fork each cell from the restored state (SweepConfig.WarmStart).
//     The seed participates in the prefix: replicates form separate
//     prefix groups, each groupable across the limit axis.
//
// Both keys are 64-bit FNV-1a over domain-separated canonical bytes,
// so they are stable across processes and platforms for a given schema
// version. Schema changes must bump the domain strings.
const (
	cellKeyDomain   = "mobisim/cellkey/v1\x00"
	prefixKeyDomain = "mobisim/prefixkey/v1\x00"
)

// CellKeyDomain and PrefixKeyDomain export the versioned domain
// strings, so external stores (the simd daemon's on-disk result cache,
// shard protocols) can derive their layout from the same version the
// hashes are computed under: bumping a domain here automatically
// retires every store location derived from it.
const (
	CellKeyDomain   = cellKeyDomain
	PrefixKeyDomain = prefixKeyDomain
)

// CellKey returns the scenario's content hash: a stable 64-bit key over
// the normalized scenario and its fully-resolved platform content. It
// errors when the platform reference cannot be resolved.
func (s Scenario) CellKey() (uint64, error) {
	return s.contentKey(cellKeyDomain, false)
}

// PrefixKey returns the content hash of the scenario's warm-up prefix:
// CellKey with LimitC and DurationS excluded. See the package comment
// above for the fork-from-snapshot contract this key encodes.
func (s Scenario) PrefixKey() (uint64, error) {
	return s.contentKey(prefixKeyDomain, true)
}

// contentKey hashes the canonical byte form of the scenario:
//
//	domain || scenarioJSON || 0x00 || platformJSON
//
// where scenarioJSON is the normalized scenario with identity-free
// fields (Name) and the platform reference (Platform, PlatformSpec)
// blanked, and platformJSON is the resolved platform spec in
// normalized JSON form.
func (s Scenario) contentKey(domain string, prefix bool) (uint64, error) {
	c := s.cloneRefs()
	c.Normalize()
	platformJSON, err := resolvedPlatformJSON(c)
	if err != nil {
		return 0, err
	}
	c.Name = ""
	c.Platform = ""
	c.PlatformSpec = nil
	if prefix {
		c.LimitC = 0
		c.DurationS = 0
	}
	scenarioJSON, err := json.Marshal(c)
	if err != nil {
		return 0, fmt.Errorf("mobisim: content key: %w", err)
	}
	h := fnv.New64a()
	h.Write([]byte(domain))
	h.Write(scenarioJSON)
	h.Write([]byte{0})
	h.Write(platformJSON)
	return h.Sum64(), nil
}

// resolvedPlatformSpec returns the normalized spec of the platform the
// (already normalized) scenario resolves to: its inline spec, the
// registered spec of that name, or the embedded built-in spec. The
// error carries no package prefix so callers can attach their own
// context.
func resolvedPlatformSpec(c Scenario) (PlatformSpec, error) {
	if c.PlatformSpec != nil {
		// cloneRefs already deep-copied and Normalize normalized it.
		return *c.PlatformSpec, nil
	}
	spec, ok := registeredSpec(c.Platform)
	if !ok {
		if spec, ok = platform.BuiltinSpec(c.Platform); !ok {
			return PlatformSpec{}, fmt.Errorf("unknown platform %q", c.Platform)
		}
	}
	spec.Normalize()
	return spec, nil
}

// resolvedPlatformJSON returns the normalized JSON of the platform the
// (already normalized) scenario resolves to.
func resolvedPlatformJSON(c Scenario) ([]byte, error) {
	spec, err := resolvedPlatformSpec(c)
	if err != nil {
		return nil, fmt.Errorf("mobisim: content key: %w", err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("mobisim: content key: platform %q: %w", c.Platform, err)
	}
	return data, nil
}
