package mobisim

import (
	"context"
	"fmt"

	"repro/internal/sim"
)

// Exported batch-execution seam.
//
// The sweep executors, the explore evaluator and the simd daemon all
// need the same two things to run cells fast: a planner that partitions
// fully-resolved scenarios into lockstep-compatible units (equal
// thermal topology and step count, prefix warm-start subgrouping for
// limit-aware cells), and a runner that executes one unit on pooled
// batch engines with byte-exact output. PlanBatchUnits and BatchRunner
// export that surface so external executors — the daemon's cache-miss
// path foremost — reuse the spec-level runners instead of duplicating
// them. Nothing reachable through this API can change output bytes:
// unit shape, lane width, observers and context-poll cadence are all
// wall-clock knobs.

// BatchPlanUnit is one executable unit of a batch plan: positions into
// the planned scenario slice, all sharing a thermal topology and step
// count. A warm unit additionally groups limit-aware cells by prefix
// for sentinel/checkpoint/fork execution.
type BatchPlanUnit struct {
	// Idx are positions into the spec slice the plan was built from.
	Idx []int
	// Warm marks a prefix warm-start unit.
	Warm bool
}

// PlanBatchUnits partitions fully-resolved scenarios into lockstep
// execution units of at most width lanes (width <= 0 selects
// DefaultBatchWidth). Cells are grouped by thermal-topology key and
// duration — only such cells may share a lockstep engine — and, when
// warmStart is set, limit-aware cells sharing a warm-up prefix (two or
// more per prefix) form warm units of up to width prefix groups whose
// sentinels advance together. Everything else becomes cold units of up
// to width lanes. Unit shape never changes output bytes, only
// wall-clock; every unit is independently executable, so callers
// schedule them freely.
func PlanBatchUnits(specs []Scenario, width int, warmStart bool) ([]BatchPlanUnit, error) {
	if width <= 0 {
		width = DefaultBatchWidth
	}
	type groupKey struct {
		topo      uint64
		durationS float64
	}
	byGroup := make(map[groupKey][]int)
	var order []groupKey
	for i := range specs {
		tk, err := thermalTopoKey(specs[i])
		if err != nil {
			return nil, err
		}
		key := groupKey{topo: tk, durationS: specs[i].DurationS}
		if _, ok := byGroup[key]; !ok {
			order = append(order, key)
		}
		byGroup[key] = append(byGroup[key], i)
	}
	var units []BatchPlanUnit
	for _, key := range order {
		gidx := byGroup[key]
		cold := gidx
		if warmStart {
			cold = nil
			byPrefix := make(map[uint64][]int)
			var prefixOrder []uint64
			for _, i := range gidx {
				if !limitAware(specs[i].Governor) {
					cold = append(cold, i)
					continue
				}
				pk, err := specs[i].PrefixKey()
				if err != nil {
					return nil, err
				}
				if _, ok := byPrefix[pk]; !ok {
					prefixOrder = append(prefixOrder, pk)
				}
				byPrefix[pk] = append(byPrefix[pk], i)
			}
			var warmSubs [][]int
			for _, pk := range prefixOrder {
				sub := byPrefix[pk]
				if len(sub) < 2 {
					// A groupless cell has no prefix to share; it runs cold.
					cold = append(cold, sub...)
					continue
				}
				warmSubs = append(warmSubs, sub)
			}
			// Pack up to width prefix groups per warm unit: their
			// sentinels advance together as lanes of one lockstep engine.
			for start := 0; start < len(warmSubs); start += width {
				end := min(start+width, len(warmSubs))
				u := BatchPlanUnit{Warm: true}
				for _, sub := range warmSubs[start:end] {
					u.Idx = append(u.Idx, sub...)
				}
				units = append(units, u)
			}
		}
		for start := 0; start < len(cold); start += width {
			units = append(units, BatchPlanUnit{Idx: cold[start:min(start+width, len(cold))]})
		}
	}
	return units, nil
}

// BatchRunOptions tunes one RunUnit execution. Nothing here can change
// output bytes: observers never perturb the dynamics, and chunked
// stepping is trajectory-identical to one call.
type BatchRunOptions struct {
	// CtxCheckSteps bounds how many integration steps may run between
	// context polls; 0 polls only between execution stages. Smaller
	// values buy cancellation latency with loop overhead.
	CtxCheckSteps int
	// Observer supplies the observer attached to the lane running
	// specs[i] of the planned slice; nil (or a nil return) leaves the
	// lane unobserved. In a warm unit the sentinel lane observes its
	// full horizon and forked members observe only their post-fork
	// steps; members of never-acting groups reuse the sentinel's
	// simulation outright and observe nothing.
	Observer func(i int) Observer
}

// BatchRunner executes planned units of fully-resolved scenarios on
// pooled lockstep engines — the exported seam over the spec-level
// runners the sweep executors and the explore evaluator terminate in.
// The zero value is ready to use; one runner should serve many units so
// the free-listed engine shells recycle across them. Safe for
// concurrent use: units run on caller goroutines over the internally
// synchronized pool.
type BatchRunner struct {
	pool sim.BatchPool
}

// RunUnit executes one planned unit against the spec slice the plan
// was built from, returning metric sets in u.Idx order — each
// bitwise-identical to a sequential Engine.Run of the same scenario.
// width bounds the fork-stage lane packing of warm units (<= 0 selects
// DefaultBatchWidth); cold units were already sized by the planner.
func (r *BatchRunner) RunUnit(ctx context.Context, specs []Scenario, u BatchPlanUnit, width int, opt BatchRunOptions) ([]map[string]float64, error) {
	if width <= 0 {
		width = DefaultBatchWidth
	}
	sub := make([]Scenario, len(u.Idx))
	for k, i := range u.Idx {
		if i < 0 || i >= len(specs) {
			return nil, fmt.Errorf("mobisim: batch unit index %d out of range (%d specs)", i, len(specs))
		}
		sub[k] = specs[i]
	}
	o := batchRunOptions{ctxCheckSteps: opt.CtxCheckSteps}
	if opt.Observer != nil {
		obs, idx := opt.Observer, u.Idx
		o.observer = func(k int) Observer { return obs(idx[k]) }
	}
	if u.Warm {
		return runWarmSpecs(ctx, &r.pool, sub, width, o)
	}
	return runLockstepSpecs(ctx, &r.pool, sub, o)
}
