package mobisim

import (
	"fmt"

	"repro/internal/appaware"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/thermgov"
	"repro/internal/workload"
)

// builtinPlatformCtors maps preset names to their constructors. It is a
// variable (not a switch) so the frozen-constructor differential test
// can swap in the pre-spec-layer builders and prove sweep output is
// bitwise unchanged; production code never mutates it.
var builtinPlatformCtors = map[string]func(int64) *platform.Platform{
	PlatformNexus6P:   platform.Nexus6P,
	PlatformOdroidXU3: platform.OdroidXU3,
}

// LookupPlatform builds the named platform with the given seed: a
// built-in preset, or a spec registered with RegisterPlatform.
func LookupPlatform(name string, seed int64) (*Platform, error) {
	if ctor, ok := builtinPlatformCtors[name]; ok {
		return ctor(seed), nil
	}
	if spec, ok := registeredSpec(name); ok {
		return spec.Compile(seed)
	}
	return nil, fmt.Errorf("mobisim: unknown platform %q", name)
}

// buildPlatform resolves a scenario's platform: the inline spec when
// present, otherwise by name.
func buildPlatform(spec Scenario) (*Platform, error) {
	if spec.PlatformSpec != nil {
		return spec.PlatformSpec.Compile(spec.Seed)
	}
	return LookupPlatform(spec.Platform, spec.Seed)
}

// New assembles a runnable engine from a declarative scenario. The spec
// is normalized and validated first, so callers building specs in code
// (rather than via ParseScenario) can pass them directly. Prewarming
// happens here; Run only advances time.
func New(spec Scenario, opts ...Option) (*Engine, error) {
	spec = spec.cloneRefs()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var bc buildConfig
	for _, opt := range opts {
		if err := opt(&bc); err != nil {
			return nil, err
		}
	}

	plat, err := buildPlatform(spec)
	if err != nil {
		return nil, err
	}
	govs, err := cpuGovernors(spec.Platform, spec.CPUGovernor)
	if err != nil {
		return nil, err
	}

	fgName, withBML := SplitWorkload(spec.Workload)
	fg, err := foregroundApp(fgName, spec.Generator, spec.Seed)
	if err != nil {
		return nil, err
	}
	// The Section IV scenarios register the foreground with the governor
	// so it is never a migration victim.
	realTime := spec.Platform == PlatformOdroidXU3
	apps := []sim.AppSpec{
		{App: fg, PID: 1, Cluster: sched.Big, Threads: 2, RealTime: realTime},
	}
	var bml *workload.BML
	if withBML {
		bml = workload.NewBML()
		if spec.ModelOnlyBML {
			// Decimating real kernel execution to zero keeps sweep
			// throughput high; modeled iterations — the reported metric —
			// are unaffected.
			bml.ExecuteRatio = 0
		}
		apps = append(apps, sim.AppSpec{App: bml, PID: 2, Cluster: sched.Big, Threads: 1})
	}
	if spec.Platform == PlatformNexus6P {
		apps = append(apps, sim.AppSpec{App: nexusOSBackground(spec.Seed), PID: 3, Cluster: sched.Little, Threads: 1})
	}

	cfg := sim.Config{
		Platform:         plat,
		Apps:             apps,
		Governors:        govs,
		StepS:            firstNonZero(bc.stepS, spec.StepS),
		TracePeriodS:     firstNonZero(bc.tracePeriodS, spec.TracePeriodS),
		TaskWindowS:      firstNonZero(bc.taskWindowS, spec.TaskWindowS),
		DAQ:              bc.daq,
		Observers:        bc.observers,
		DisableRecording: bc.disableRecording,
	}

	var aware *appaware.Governor
	switch spec.Governor {
	case GovAppAware:
		acfg := appaware.Config{HorizonS: 30, IntervalS: 0.1}
		if spec.LimitC != 0 {
			acfg.ThermalLimitK = thermal.ToKelvin(spec.LimitC)
		}
		aware, err = appaware.New(acfg)
		if err != nil {
			return nil, err
		}
		cfg.Controller = aware // replaces the kernel thermal governor
	case GovIPA:
		tg, err := odroidIPA()
		if err != nil {
			return nil, err
		}
		cfg.Thermal = tg
	case GovStepwise:
		tg, err := nexusStepWise()
		if err != nil {
			return nil, err
		}
		cfg.Thermal = tg
	case GovNone:
		// Actively clears caps and never throttles — the paper's
		// "without throttling" arm.
		cfg.Thermal = thermgov.None{}
	}

	eng, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if spec.PrewarmC > 0 {
		if err := plat.Prewarm(spec.PrewarmC); err != nil {
			return nil, err
		}
	}
	return &Engine{
		spec:  spec,
		sim:   eng,
		plat:  plat,
		apps:  apps,
		fg:    fg,
		bml:   bml,
		aware: aware,
		daq:   bc.daq,
	}, nil
}

// firstNonZero picks the option override over the spec value.
func firstNonZero(override, specValue float64) float64 {
	if override != 0 {
		return override
	}
	return specValue
}

// cpuGovernors builds the CPUfreq governor set for a platform: its
// stock set, or a uniform family when the scenario overrides it.
// Spec-defined platforms get the generic Linux arrangement as stock —
// interactive on both CPU clusters, ondemand on the GPU — the same
// shape as the board preset but without its calibrations.
func cpuGovernors(platformName, family string) (map[platform.DomainID]governor.Governor, error) {
	if family == "" || family == CPUGovStock {
		switch platformName {
		case PlatformNexus6P:
			return nexusCPUGovernors()
		default:
			return odroidCPUGovernors()
		}
	}
	govs := make(map[platform.DomainID]governor.Governor, 3)
	for _, id := range platform.DomainIDs() {
		g, err := buildCPUGovernor(family)
		if err != nil {
			return nil, err
		}
		govs[id] = g
	}
	return govs, nil
}

// buildCPUGovernor constructs one fresh governor of the given family.
func buildCPUGovernor(family string) (governor.Governor, error) {
	switch family {
	case CPUGovInteractive:
		return governor.NewInteractive(governor.DefaultInteractiveConfig())
	case CPUGovOndemand:
		return governor.NewOndemand(governor.DefaultOndemandConfig())
	case CPUGovPerformance:
		return governor.Performance{}, nil
	case CPUGovPowersave:
		return governor.Powersave{}, nil
	case CPUGovConservative:
		return governor.NewConservative(governor.DefaultConservativeConfig())
	default:
		return nil, fmt.Errorf("mobisim: unknown cpu governor %q", family)
	}
}

// nexusCPUGovernors builds the phone's stock CPUfreq governor set:
// interactive on both CPU clusters and a sustained-load-biased
// interactive on the Adreno, which climbs past 510 MHz only for
// sustained load — what spreads game residency across 510/600 MHz
// (the paper's Figure 2).
func nexusCPUGovernors() (map[platform.DomainID]governor.Governor, error) {
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		return nil, err
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		return nil, err
	}
	gpuGov, err := governor.NewInteractive(governor.InteractiveConfig{
		TargetLoad:         0.90,
		HispeedFreqHz:      510e6,
		AboveHispeedDelayS: 1.0,
		BoostHoldS:         0.05, // the GPU barely reacts to touch itself
		IntervalS:          0.02,
	})
	if err != nil {
		return nil, err
	}
	return map[platform.DomainID]governor.Governor{
		platform.DomLittle: littleGov,
		platform.DomBig:    bigGov,
		platform.DomGPU:    gpuGov,
	}, nil
}

// odroidCPUGovernors builds the board's stock CPUfreq governor set:
// interactive on both CPU clusters, ondemand on the Mali GPU.
func odroidCPUGovernors() (map[platform.DomainID]governor.Governor, error) {
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		return nil, err
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		return nil, err
	}
	gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		return nil, err
	}
	return map[platform.DomainID]governor.Governor{
		platform.DomLittle: littleGov,
		platform.DomBig:    bigGov,
		platform.DomGPU:    gpuGov,
	}, nil
}

// nexusStepWise builds the phone's default step-wise trip governor:
// a 44°C passive trip on the hottest on-die zone.
func nexusStepWise() (thermgov.Governor, error) {
	return thermgov.NewStepWise(thermgov.StepWiseConfig{
		TripK:       273.15 + 44,
		HysteresisK: 1,
		CriticalK:   273.15 + 95,
		IntervalS:   0.3,
	})
}

// odroidIPA builds the default thermal governor of the Odroid's Linux
// 3.10 kernel: trip points with ARM intelligent power allocation.
func odroidIPA() (thermgov.Governor, error) {
	return thermgov.NewIPA(thermgov.IPAConfig{
		ControlTempK:      273.15 + 66,
		SustainablePowerW: 2.05,
		KPo:               0.17,
		KPu:               0.6,
		KI:                0.02,
		IntegralClampW:    0.8,
		IntervalS:         0.1,
		Weights:           map[string]float64{"gpu": 1.5},
	})
}

// foregroundApp builds the named foreground workload. Generated
// ("gen-*") names synthesize a seeded stochastic app — the kind's
// default spec, or the scenario's Generator knobs when present.
func foregroundApp(name string, gen *WorkloadGen, seed int64) (workload.App, error) {
	if kind, ok := genWorkloadKind(name); ok {
		gspec := workload.DefaultGenSpec(kind)
		if gen != nil {
			gspec = *gen
		}
		return gspec.Build(seed)
	}
	switch name {
	case "3dmark":
		return workload.NewThreeDMark(seed), nil
	case "nenamark":
		return workload.NewNenamark(workload.DefaultNenamarkConfig())
	case "paper.io":
		return workload.PaperIO(seed), nil
	case "stickman-hook":
		return workload.StickmanHook(seed), nil
	case "amazon":
		return workload.Amazon(seed), nil
	case "hangouts":
		return workload.Hangouts(seed), nil
	case "facebook":
		return workload.Facebook(seed), nil
	default:
		return nil, fmt.Errorf("mobisim: unknown workload %q", name)
	}
}

// nexusOSBackground is a light OS/background task keeping the phone's
// little cluster realistic.
func nexusOSBackground(seed int64) *workload.FrameApp {
	return workload.MustFrameApp(workload.FrameAppConfig{
		Name: "android-os",
		Phases: []workload.Phase{
			{DurationS: 60, CPUCyclesPerFrame: 4e6, TargetFPS: 30, TouchRatePerS: 0},
		},
		Loop: true,
		Seed: seed + 1,
	})
}
