package mobisim

import (
	"bytes"
	"reflect"
	"testing"
)

// The facade-level record→replay round trip: a generated workload's
// demand trace survives capture, CSV rendering and re-parsing bitwise.
func TestRecordForegroundTraceRoundTrip(t *testing.T) {
	spec := Scenario{
		Platform:  PlatformNexus6P,
		Workload:  "gen-periodic",
		Governor:  GovNone,
		DurationS: 20,
		Seed:      9,
	}
	samples, err := RecordForegroundTrace(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 200 {
		t.Fatalf("recorded %d samples, want 200", len(samples))
	}
	csv := EncodeReplayCSV(samples)
	parsed, err := ParseReplayCSV(string(csv))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, samples) {
		t.Fatal("record → encode → parse did not reproduce the samples")
	}
	if !bytes.Equal(EncodeReplayCSV(parsed), csv) {
		t.Fatal("re-encoding parsed samples is not byte-stable")
	}

	// Recording is deterministic in the scenario seed.
	again, err := RecordForegroundTrace(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, samples) {
		t.Fatal("same scenario recorded a different trace")
	}

	// And tuned generator knobs flow through.
	gen := WorkloadGen{Kind: "periodic", HorizonS: 10, TargetFPS: 30, CPUCyclesPerFrameMax: 2e7, GPUCyclesPerFrameMax: 4e6}
	tuned := spec
	tuned.Generator = &gen
	tunedSamples, err := RecordForegroundTrace(tuned, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(tunedSamples, samples) {
		t.Fatal("generator knobs had no effect on the recorded trace")
	}
	for _, s := range tunedSamples {
		if s.CPUHz > 30*2e7 || s.GPUHz > 30*4e6 {
			t.Fatalf("tuned trace exceeds its spec bounds at t=%v: %+v", s.TimeS, s)
		}
	}
	if _, err := RecordForegroundTrace(spec, 0); err == nil {
		t.Error("zero record period accepted")
	}
}

// Regression: tuning a single generator knob must not discard the
// cycle-bound defaults (the knobs default as a block), and builders
// must never write normalization results through a caller-shared
// generator pointer.
func TestGeneratorKnobDefaultsAndAliasing(t *testing.T) {
	s, err := ParseScenario([]byte(`{"platform":"nexus6p","workload":"gen-bursty","governor":"none","duration_s":1,"generator":{"kind":"bursty","burst_ratio":0.9}}`))
	if err != nil {
		t.Fatalf("single-knob generator spec rejected: %v", err)
	}
	if s.Generator.CPUCyclesPerFrameMax == 0 {
		t.Error("cycle bounds not defaulted alongside a tuned shape knob")
	}
	if _, err := New(s, WithoutRecording()); err != nil {
		t.Fatalf("single-knob generator scenario fails to build: %v", err)
	}

	shared := WorkloadGen{CPUCyclesPerFrameMax: 4e7, GPUCyclesPerFrameMax: 1e7}
	if _, err := New(Scenario{
		Platform: PlatformNexus6P, Workload: "gen-bursty", Governor: GovNone,
		DurationS: 0.5, Generator: &shared,
	}, WithoutRecording()); err != nil {
		t.Fatal(err)
	}
	if shared.Kind != "" || shared.HorizonS != 0 {
		t.Errorf("New wrote normalization through the caller's generator: %+v", shared)
	}
	// The same shared knobs must therefore work for a different kind.
	if _, err := New(Scenario{
		Platform: PlatformNexus6P, Workload: "gen-ramp", Governor: GovNone,
		DurationS: 0.5, Generator: &shared,
	}, WithoutRecording()); err != nil {
		t.Fatalf("shared generator reuse across kinds failed: %v", err)
	}
}
