package mobisim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stability"
	"repro/internal/sweep"
)

// DefaultBatchWidth is the lane count batched sweeps pack to when
// SweepConfig.BatchWidth is left at BatchAuto, re-exported from the
// expansion engine.
const DefaultBatchWidth = sweep.DefaultBatchWidth

// RunSweepBatched is RunSweep on the batched lockstep executor with
// the default batch width — the convenience entry point for callers
// that do not tune SweepConfig.BatchWidth themselves.
func RunSweepBatched(ctx context.Context, m Matrix, cfg SweepConfig) (*SweepOutput, error) {
	if cfg.BatchWidth == 0 {
		cfg.BatchWidth = DefaultBatchWidth
	}
	return RunSweep(ctx, m, cfg)
}

// batchRunner executes batches of same-platform scenarios on pooled,
// reusable lockstep engines. One runner serves a whole sweep: the
// free-listed BatchEngine shells (and their fused-kernel buffers) are
// recycled across every batch the sweep's workers execute instead of
// being constructed per matrix cell.
type batchRunner struct {
	pool sim.BatchPool
}

// run is the sweep.BatchRunFunc: map each expanded sweep point to its
// facade scenario and run the batch through the shared lockstep spec
// runner.
func (r *batchRunner) run(ctx context.Context, batch []sweep.Scenario) ([]map[string]float64, error) {
	specs := make([]Scenario, len(batch))
	for i, sc := range batch {
		specs[i] = warmSpec(sc)
	}
	return runLockstepSpecs(ctx, &r.pool, specs)
}

// runLockstepSpecs executes one batch of facade scenarios on a pooled
// lockstep engine: build one constant-memory engine per lane, couple
// them on a BatchEngine from the pool, advance all lanes together, and
// extract per-lane metrics. Each lane is built exactly like the
// sequential path's RunScenarioMetrics builds its engine, and lanes
// never interact, so the metric sets are bitwise-identical to
// sequential runs. All lanes must share a thermal topology with equal
// parameter values (the pool rejects mixed batches) and span the same
// step count; callers group accordingly. The sweep executors and the
// explore evaluator both terminate here, so every consumer inherits the
// pooled-engine, no-per-cell-construction hot path.
func runLockstepSpecs(ctx context.Context, pool *sim.BatchPool, specs []Scenario) ([]map[string]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	facades := make([]*Engine, len(specs))
	lanes := make([]*sim.Engine, len(specs))
	// Lanes with paired seeds feed the appaware stability analysis
	// bitwise-identical inputs until their trajectories diverge (and
	// limit-agnostic pairs never diverge); one per-batch memo lets the
	// first lane's fixed-point analysis and ODE integration serve the
	// rest. The batch runs on one goroutine, so the share is safe.
	var shared *stability.TransientCache
	steps := -1
	for i, spec := range specs {
		eng, err := New(spec, WithoutRecording())
		if err != nil {
			return nil, err
		}
		facades[i] = eng
		lanes[i] = eng.Sim()
		if aware := eng.AppAware(); aware != nil {
			if shared == nil {
				shared = stability.NewTransientCache()
			}
			aware.ShareTransientCache(shared)
		}
		// Mirror Engine.Run's duration-to-step conversion exactly; a
		// Validate-accepted spec cannot exceed the run bound.
		n := int(math.Round(spec.DurationS / lanes[i].StepS()))
		if steps == -1 {
			steps = n
		} else if n != steps {
			return nil, fmt.Errorf("mobisim: batch lane %d spans %d steps, lane 0 spans %d (mixed durations in one batch)", i, n, steps)
		}
	}
	be, err := pool.Get(lanes)
	if err != nil {
		return nil, err
	}
	if err := be.RunSteps(steps); err != nil {
		return nil, err
	}
	out := make([]map[string]float64, len(specs))
	for i, f := range facades {
		out[i] = f.Metrics()
	}
	// Metrics are extracted before the shell returns to the pool, so
	// recycled buffers can never alias a lane still being read.
	pool.Put(be)
	return out, nil
}
