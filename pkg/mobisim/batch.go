package mobisim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stability"
	"repro/internal/sweep"
)

// DefaultBatchWidth is the lane count batched sweeps pack to when
// SweepConfig.BatchWidth is left at BatchAuto, re-exported from the
// expansion engine.
const DefaultBatchWidth = sweep.DefaultBatchWidth

// RunSweepBatched is RunSweep on the batched lockstep executor with
// the default batch width — the convenience entry point for callers
// that do not tune SweepConfig.BatchWidth themselves.
func RunSweepBatched(ctx context.Context, m Matrix, cfg SweepConfig) (*SweepOutput, error) {
	if cfg.BatchWidth == 0 {
		cfg.BatchWidth = DefaultBatchWidth
	}
	return RunSweep(ctx, m, cfg)
}

// batchRunner executes batches of same-platform scenarios on pooled,
// reusable lockstep engines. One runner serves a whole sweep: the
// free-listed BatchEngine shells (and their fused-kernel buffers) are
// recycled across every batch the sweep's workers execute instead of
// being constructed per matrix cell.
type batchRunner struct {
	pool sim.BatchPool
}

// run is the sweep.BatchRunFunc: map each expanded sweep point to its
// facade scenario and run the batch through the shared lockstep spec
// runner.
func (r *batchRunner) run(ctx context.Context, batch []sweep.Scenario) ([]map[string]float64, error) {
	specs := make([]Scenario, len(batch))
	for i, sc := range batch {
		specs[i] = warmSpec(sc)
	}
	return runLockstepSpecs(ctx, &r.pool, specs, batchRunOptions{})
}

// batchRunOptions is the internal form of BatchRunOptions: execution
// knobs threaded through the spec-level runners. The zero value is the
// classic configuration — no observers, ctx polled only between
// stages — so the sweep executors pay nothing for the seam.
type batchRunOptions struct {
	ctxCheckSteps int
	observer      func(i int) Observer
}

// observerFor returns the observer for the lane running specs[i], nil
// when the caller attached none.
func (o batchRunOptions) observerFor(i int) Observer {
	if o.observer == nil {
		return nil
	}
	return o.observer(i)
}

// newBatchLane builds one lane engine exactly like the sequential path
// does (recording disabled), attaching obs when non-nil. Observers
// never perturb the simulated dynamics, so an observed lane stays
// byte-identical to an unobserved one.
func newBatchLane(spec Scenario, obs Observer) (*Engine, error) {
	if obs != nil {
		return New(spec, WithoutRecording(), WithObserver(obs))
	}
	return New(spec, WithoutRecording())
}

// advanceChunked advances a run by exactly steps steps, polling ctx
// every at most chunk steps (chunk <= 0 runs the remainder in one
// call). Splitting RunSteps never changes the trajectory — the same
// chunking invariant the simd scheduler documents — so chunk is a
// cancellation-latency knob only.
func advanceChunked(ctx context.Context, advance func(int) error, steps, chunk int) error {
	if chunk <= 0 {
		chunk = steps
	}
	for done := 0; done < steps; {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := steps - done
		if n > chunk {
			n = chunk
		}
		if err := advance(n); err != nil {
			return err
		}
		done += n
	}
	return nil
}

// runLockstepSpecs executes one batch of facade scenarios on a pooled
// lockstep engine: build one constant-memory engine per lane, couple
// them on a BatchEngine from the pool, advance all lanes together, and
// extract per-lane metrics. Each lane is built exactly like the
// sequential path's RunScenarioMetrics builds its engine, and lanes
// never interact, so the metric sets are bitwise-identical to
// sequential runs. All lanes must share a thermal topology with equal
// parameter values (the pool rejects mixed batches) and span the same
// step count; callers group accordingly. The sweep executors and the
// explore evaluator both terminate here, so every consumer inherits the
// pooled-engine, no-per-cell-construction hot path.
func runLockstepSpecs(ctx context.Context, pool *sim.BatchPool, specs []Scenario, opt batchRunOptions) ([]map[string]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	facades := make([]*Engine, len(specs))
	lanes := make([]*sim.Engine, len(specs))
	// Lanes with paired seeds feed the appaware stability analysis
	// bitwise-identical inputs until their trajectories diverge (and
	// limit-agnostic pairs never diverge); one per-batch memo lets the
	// first lane's fixed-point analysis and ODE integration serve the
	// rest. The batch runs on one goroutine, so the share is safe.
	var shared *stability.TransientCache
	steps := -1
	for i, spec := range specs {
		eng, err := newBatchLane(spec, opt.observerFor(i))
		if err != nil {
			return nil, err
		}
		facades[i] = eng
		lanes[i] = eng.Sim()
		if aware := eng.AppAware(); aware != nil {
			if shared == nil {
				shared = stability.NewTransientCache()
			}
			aware.ShareTransientCache(shared)
		}
		// Mirror Engine.Run's duration-to-step conversion exactly; a
		// Validate-accepted spec cannot exceed the run bound.
		n := int(math.Round(spec.DurationS / lanes[i].StepS()))
		if steps == -1 {
			steps = n
		} else if n != steps {
			return nil, fmt.Errorf("mobisim: batch lane %d spans %d steps, lane 0 spans %d (mixed durations in one batch)", i, n, steps)
		}
	}
	be, err := pool.Get(lanes)
	if err != nil {
		return nil, err
	}
	if err := advanceChunked(ctx, be.RunSteps, steps, opt.ctxCheckSteps); err != nil {
		return nil, err
	}
	out := make([]map[string]float64, len(specs))
	for i, f := range facades {
		out[i] = f.Metrics()
	}
	// Metrics are extracted before the shell returns to the pool, so
	// recycled buffers can never alias a lane still being read.
	pool.Put(be)
	return out, nil
}
