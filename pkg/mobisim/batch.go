package mobisim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stability"
	"repro/internal/sweep"
)

// DefaultBatchWidth is the lane count batched sweeps pack to when
// SweepConfig.BatchWidth is left at BatchAuto, re-exported from the
// expansion engine.
const DefaultBatchWidth = sweep.DefaultBatchWidth

// RunSweepBatched is RunSweep on the batched lockstep executor with
// the default batch width — the convenience entry point for callers
// that do not tune SweepConfig.BatchWidth themselves.
func RunSweepBatched(ctx context.Context, m Matrix, cfg SweepConfig) (*SweepOutput, error) {
	if cfg.BatchWidth == 0 {
		cfg.BatchWidth = DefaultBatchWidth
	}
	return RunSweep(ctx, m, cfg)
}

// batchRunner executes batches of same-platform scenarios on pooled,
// reusable lockstep engines. One runner serves a whole sweep: the
// free-listed BatchEngine shells (and their fused-kernel buffers) are
// recycled across every batch the sweep's workers execute instead of
// being constructed per matrix cell.
type batchRunner struct {
	pool sim.BatchPool
}

// run is the sweep.BatchRunFunc: build one constant-memory engine per
// lane, couple them on a pooled BatchEngine, advance all lanes in
// lockstep, and extract per-lane metrics. Each lane is built exactly
// like the sequential path's RunScenarioMetrics builds its engine, and
// lanes never interact, so the metric sets are bitwise-identical to
// sequential runs.
func (r *batchRunner) run(ctx context.Context, batch []sweep.Scenario) ([]map[string]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	facades := make([]*Engine, len(batch))
	lanes := make([]*sim.Engine, len(batch))
	// Lanes with paired seeds feed the appaware stability analysis
	// bitwise-identical inputs until their trajectories diverge (and
	// limit-agnostic pairs never diverge); one per-batch memo lets the
	// first lane's fixed-point analysis and ODE integration serve the
	// rest. The batch runs on one goroutine, so the share is safe.
	var shared *stability.TransientCache
	steps := -1
	for i, sc := range batch {
		spec := Scenario{
			Platform:     sc.Platform,
			Workload:     sc.Workload,
			Governor:     sc.Governor,
			LimitC:       sc.LimitC,
			DurationS:    sc.DurationS,
			Seed:         sc.Seed,
			ModelOnlyBML: true,
		}
		eng, err := New(spec, WithoutRecording())
		if err != nil {
			return nil, err
		}
		facades[i] = eng
		lanes[i] = eng.Sim()
		if aware := eng.AppAware(); aware != nil {
			if shared == nil {
				shared = stability.NewTransientCache()
			}
			aware.ShareTransientCache(shared)
		}
		// Mirror Engine.Run's duration-to-step conversion exactly; a
		// Validate-accepted spec cannot exceed the run bound.
		n := int(math.Round(sc.DurationS / lanes[i].StepS()))
		if steps == -1 {
			steps = n
		} else if n != steps {
			return nil, fmt.Errorf("mobisim: batch lane %d spans %d steps, lane 0 spans %d (mixed durations in one batch)", i, n, steps)
		}
	}
	be, err := r.pool.Get(lanes)
	if err != nil {
		return nil, err
	}
	if err := be.RunSteps(steps); err != nil {
		return nil, err
	}
	out := make([]map[string]float64, len(batch))
	for i, f := range facades {
		out[i] = f.Metrics()
	}
	// Metrics are extracted before the shell returns to the pool, so
	// recycled buffers can never alias a lane still being read.
	r.pool.Put(be)
	return out, nil
}
