package mobisim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/snapbin"
	"repro/internal/stability"
	"repro/internal/sweep"
	"repro/internal/thermal"
)

// Content-addressed prefix warm-start (SweepConfig.WarmStart).
//
// Sweep cells that differ only in the thermal limit follow bitwise-
// identical trajectories until the limit-aware governor's first
// limit-dependent control action: a control tick that takes no action
// mutates nothing that depends on the limit, and the time of the first
// action is monotone in the limit (a lower limit is crossed no later
// than a higher one). The warm executor exploits this:
//
//  1. Cells are grouped by PrefixKey — the content hash of everything
//     but the limit (plus equal duration, required so one fork step
//     count serves the whole group).
//  2. Each group's sentinel — the member with the lowest effective
//     limit — runs first, snapshotting its state once per control
//     interval while it has not yet acted. Any checkpoint taken before
//     the sentinel's first event is a state every member shares (no
//     member can act before the sentinel), so the checkpoint cadence
//     is a cost knob, not a correctness one. Under a batched
//     configuration, the sentinels of several groups advance together
//     as lanes of one lockstep engine.
//  3. Every other member is built fresh, restored from its group's
//     checkpoint, and only simulates the remaining steps — scalar or
//     packed onto the batched lockstep executor, mirroring the cold
//     paths.
//  4. If a sentinel never acts, no member of its group ever acts and
//     all members are bitwise-identical runs: they share the
//     sentinel's metrics without simulating at all.
//
// Because forked members replay the exact remaining step count from a
// bitwise-exact restored state, warm-start output is byte-identical to
// the cold executors for every matrix (the sweep tests pin this).

// warmPlan is the partition of an expanded sweep for the warm executor.
type warmPlan struct {
	// groups are the warm groups (>= 2 members sharing a prefix), each
	// in expansion order; groupPos holds the members' positions in the
	// expanded scenario slice.
	groups   [][]sweep.Scenario
	groupPos [][]int
	// coldPos are the positions of everything else — limit-agnostic
	// arms and groupless limit-aware cells — in expansion order.
	coldPos []int
}

// warmGroupKey identifies one warm group: the prefix content hash plus
// the fields the executor additionally requires to agree — equal
// duration (one fork step count per group) and the literal platform
// name (batch lanes are packed per name).
type warmGroupKey struct {
	prefix    uint64
	durationS float64
	platform  string
}

// planWarmStart partitions the expanded scenarios into warm groups and
// cold cells. Only limit-aware arms are groupable; a group needs at
// least two members to be worth a sentinel.
func planWarmStart(scenarios []sweep.Scenario) (*warmPlan, error) {
	byKey := make(map[warmGroupKey][]int)
	var order []warmGroupKey
	for i, sc := range scenarios {
		if !limitAware(sc.Governor) {
			continue
		}
		prefix, err := warmSpec(sc).PrefixKey()
		if err != nil {
			return nil, fmt.Errorf("mobisim: warm-start plan: scenario %d (%s): %w", sc.Index, sc.Key(), err)
		}
		key := warmGroupKey{prefix: prefix, durationS: sc.DurationS, platform: sc.Platform}
		if _, seen := byKey[key]; !seen {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], i)
	}
	plan := &warmPlan{}
	grouped := make(map[int]bool, len(scenarios))
	for _, key := range order {
		pos := byKey[key]
		if len(pos) < 2 {
			continue
		}
		group := make([]sweep.Scenario, len(pos))
		for k, p := range pos {
			group[k] = scenarios[p]
			grouped[p] = true
		}
		plan.groups = append(plan.groups, group)
		plan.groupPos = append(plan.groupPos, pos)
	}
	for i := range scenarios {
		if !grouped[i] {
			plan.coldPos = append(plan.coldPos, i)
		}
	}
	return plan, nil
}

// warmSpec maps one expanded sweep point to the facade scenario the
// executor actually runs — the same mapping the cold paths use
// (runSweepScenario, batchRunner), so the content keys address the
// simulated cell, not a variant of it.
func warmSpec(sc sweep.Scenario) Scenario {
	return Scenario{
		Platform:     sc.Platform,
		Workload:     sc.Workload,
		Governor:     sc.Governor,
		LimitC:       sc.LimitC,
		DurationS:    sc.DurationS,
		Seed:         sc.Seed,
		ModelOnlyBML: true,
	}
}

// runWarmSweep executes an expanded sweep under the warm-start policy:
// cold cells ride the existing sequential or batched executor, warm
// groups ride the group pool, and results land by expansion position so
// aggregation sees exactly what the cold executors produce.
func runWarmSweep(ctx context.Context, scenarios []sweep.Scenario, cfg SweepConfig) ([]sweep.Result, error) {
	plan, err := planWarmStart(scenarios)
	if err != nil {
		return nil, err
	}
	results := make([]sweep.Result, len(scenarios))

	if len(plan.coldPos) > 0 {
		cold := make([]sweep.Scenario, len(plan.coldPos))
		for i, p := range plan.coldPos {
			cold[i] = scenarios[p]
		}
		var coldResults []sweep.Result
		if cfg.BatchWidth > 0 {
			runner := &batchRunner{}
			pool := &sweep.BatchPool{Workers: cfg.Workers, Width: cfg.BatchWidth, RunFunc: runner.run}
			coldResults, err = pool.Run(ctx, cold)
		} else {
			pool := &sweep.Pool{Workers: cfg.Workers, RunFunc: runSweepScenario}
			coldResults, err = pool.Run(ctx, cold)
		}
		if err != nil {
			return nil, err
		}
		for i, p := range plan.coldPos {
			results[p] = coldResults[i]
		}
	}

	if len(plan.groups) > 0 {
		// Pack consecutive groups sharing a platform and duration into
		// one work unit each, so a batched runner can advance their
		// sentinels together as lanes of one lockstep engine. Scalar
		// runs use packs of one group; the pack size never changes
		// output bytes, only execution grouping.
		packWidth := 1
		if cfg.BatchWidth > 0 {
			packWidth = cfg.BatchWidth
		}
		var packs [][]sweep.Scenario
		var packPos [][]int
		for g := 0; g < len(plan.groups); {
			key := warmPackKey(plan.groups[g][0])
			var pack []sweep.Scenario
			var pos []int
			n := 0
			for ; g < len(plan.groups) && n < packWidth && warmPackKey(plan.groups[g][0]) == key; g, n = g+1, n+1 {
				pack = append(pack, plan.groups[g]...)
				pos = append(pos, plan.groupPos[g]...)
			}
			packs = append(packs, pack)
			packPos = append(packPos, pos)
		}
		runner := &warmRunner{batchWidth: cfg.BatchWidth}
		pool := &sweep.GroupPool{Workers: cfg.Workers, RunFunc: runner.run}
		packMetrics, err := pool.Run(ctx, packs)
		if err != nil {
			return nil, err
		}
		for g, pos := range packPos {
			for k, p := range pos {
				results[p] = sweep.Result{Scenario: scenarios[p], Metrics: packMetrics[g][k]}
			}
		}
	}
	return results, nil
}

// packKey is the pack-compatibility key: groups may share a lockstep
// sentinel batch only on the same platform and duration.
type packKey struct {
	platform  string
	durationS float64
}

func warmPackKey(sc sweep.Scenario) packKey {
	return packKey{platform: sc.Platform, durationS: sc.DurationS}
}

// warmRunner executes warm packs: sentinel, checkpoint, fork. One
// runner serves a whole sweep; its BatchEngine pool recycles lockstep
// shells across every pack's sentinel and fork stages exactly like the
// cold batched executor recycles them across batches.
type warmRunner struct {
	batchWidth int
	pool       sim.BatchPool
}

// sentinelRun is one group's shared-prefix simulation in flight.
type sentinelRun struct {
	facade   *Engine
	aware    *AppAwareGovernor
	ckpt     []byte
	ckptStep int
	acted    bool
}

// snapshotInto refreshes the sentinel's checkpoint (reusing both the
// scratch writer and the checkpoint buffer) unless it has acted.
func (s *sentinelRun) snapshotInto(w *snapbin.Writer, step int) error {
	w.Reset()
	if err := s.facade.Sim().SnapshotTo(w); err != nil {
		return err
	}
	s.ckpt = append(s.ckpt[:0], w.Bytes()...)
	s.ckptStep = step
	return nil
}

// run is the sweep.GroupRunFunc. A pack holds one or more prefix
// groups on one platform with one duration; metric sets come back in
// pack order.
func (r *warmRunner) run(ctx context.Context, pack []sweep.Scenario) ([]map[string]float64, error) {
	specs := make([]Scenario, len(pack))
	for i, sc := range pack {
		specs[i] = warmSpec(sc)
	}
	return runWarmSpecs(ctx, &r.pool, specs, r.batchWidth, batchRunOptions{})
}

// runWarmSpecs executes one pack of facade scenarios under the warm-
// start policy: sentinel, checkpoint, fork. A pack holds one or more
// prefix groups sharing a thermal topology and duration; metric sets
// come back in pack order. The sweep warm executor and the explore
// evaluator both terminate here, so both inherit the same byte-exact
// fork-from-snapshot contract.
func runWarmSpecs(ctx context.Context, pool *sim.BatchPool, specs []Scenario, batchWidth int, opt batchRunOptions) ([]map[string]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	subs, err := partitionWarmSpecs(specs)
	if err != nil {
		return nil, err
	}

	// Sentinel stage: the lowest-limit member of every subgroup runs
	// the full horizon, checkpointing once per control interval until
	// its first event. Batched configurations advance all sentinels in
	// lockstep; scalar configurations run them one by one (a pack then
	// holds exactly one group).
	sentinels := make([]*sentinelRun, len(subs))
	lanes := make([]*sim.Engine, len(subs))
	for si, sub := range subs {
		eng, err := newBatchLane(specs[sub[0]], opt.observerFor(sub[0]))
		if err != nil {
			return nil, err
		}
		aware := eng.AppAware()
		if aware == nil {
			return nil, fmt.Errorf("mobisim: warm group sentinel %d (governor %q) is not appaware", sub[0], specs[sub[0]].Governor)
		}
		sentinels[si] = &sentinelRun{facade: eng, aware: aware}
		lanes[si] = eng.Sim()
	}
	steps := int(math.Round(specs[0].DurationS / lanes[0].StepS()))
	span := int(math.Round(sentinels[0].aware.IntervalS() / lanes[0].StepS()))
	if span < 1 {
		span = 1
	}

	// Multi-lane packs advance in lockstep on one pooled batch engine,
	// held across the whole horizon (each RunSteps call gathers from the
	// lane engines, so mid-run lane snapshots stay coherent).
	advance := func(n int) error { return lanes[0].RunSteps(n) }
	if len(lanes) > 1 {
		be, err := pool.Get(lanes)
		if err != nil {
			return nil, err
		}
		defer pool.Put(be)
		advance = be.RunSteps
	}
	var w snapbin.Writer
	for done := 0; done < steps; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := steps - done
		allActed := true
		for _, s := range sentinels {
			if s.acted {
				continue
			}
			allActed = false
			if err := s.snapshotInto(&w, done); err != nil {
				return nil, err
			}
		}
		if !allActed && n > span {
			// Only pace by control intervals while a checkpoint is
			// still being tracked; once every sentinel has acted the
			// rest of the horizon runs in one call.
			n = span
		}
		if opt.ctxCheckSteps > 0 && n > opt.ctxCheckSteps {
			// Cancellation-latency cap: without it the post-event tail
			// (and a pathologically long control interval) would run to
			// the horizon between ctx polls. Chunking never changes the
			// trajectory; a finer checkpoint cadence is a cost knob.
			n = opt.ctxCheckSteps
		}
		if err := advance(n); err != nil {
			return nil, err
		}
		done += n
		for _, s := range sentinels {
			if !s.acted && s.aware.EventCount() > 0 {
				s.acted = true
			}
		}
	}

	out := make([]map[string]float64, len(specs))
	for si, sub := range subs {
		out[sub[0]] = sentinels[si].facade.Metrics()
	}

	// Fork stage, per subgroup: members of never-acting groups share
	// the sentinel's metrics outright (their runs would be bitwise-
	// identical); members of acting groups restore the group's
	// checkpoint and simulate the remaining steps.
	for si, sub := range subs {
		s := sentinels[si]
		members := sub[1:]
		if !s.acted {
			for _, oi := range members {
				m := make(map[string]float64, len(out[sub[0]]))
				for k, v := range out[sub[0]] {
					m[k] = v
				}
				out[oi] = m
			}
			continue
		}
		forkSteps := steps - s.ckptStep
		if batchWidth <= 0 {
			for _, oi := range members {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				eng, err := newBatchLane(specs[oi], opt.observerFor(oi))
				if err != nil {
					return nil, err
				}
				if err := eng.Restore(s.ckpt); err != nil {
					return nil, err
				}
				if err := advanceChunked(ctx, eng.RunSteps, forkSteps, opt.ctxCheckSteps); err != nil {
					return nil, err
				}
				out[oi] = eng.Metrics()
			}
			continue
		}
		for start := 0; start < len(members); start += batchWidth {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			end := start + batchWidth
			if end > len(members) {
				end = len(members)
			}
			chunk := members[start:end]
			facades := make([]*Engine, len(chunk))
			forkLanes := make([]*sim.Engine, len(chunk))
			// Forked lanes share one stability memo exactly like cold
			// batched lanes: they restart from a common state and feed
			// the analysis bitwise-equal inputs until their limits
			// diverge them.
			shared := stability.NewTransientCache()
			for i, oi := range chunk {
				eng, err := newBatchLane(specs[oi], opt.observerFor(oi))
				if err != nil {
					return nil, err
				}
				if err := eng.Restore(s.ckpt); err != nil {
					return nil, err
				}
				eng.AppAware().ShareTransientCache(shared)
				facades[i] = eng
				forkLanes[i] = eng.Sim()
			}
			be, err := pool.Get(forkLanes)
			if err != nil {
				return nil, err
			}
			if err := advanceChunked(ctx, be.RunSteps, forkSteps, opt.ctxCheckSteps); err != nil {
				return nil, err
			}
			for i, oi := range chunk {
				out[oi] = facades[i].Metrics()
			}
			pool.Put(be)
		}
	}
	return out, nil
}

// partitionWarmSpecs splits a pack into its prefix subgroups, each
// ordered by effective thermal limit ascending (sentinel first).
// Subgroup membership is re-derived from the same content keys the
// planner used, so a pack of several groups partitions exactly as
// planned.
func partitionWarmSpecs(specs []Scenario) ([][]int, error) {
	byKey := make(map[uint64][]int)
	var order []uint64
	for i, spec := range specs {
		prefix, err := spec.PrefixKey()
		if err != nil {
			return nil, err
		}
		if _, seen := byKey[prefix]; !seen {
			order = append(order, prefix)
		}
		byKey[prefix] = append(byKey[prefix], i)
	}
	// Named-platform defaults are memoized per name so a pack does not
	// rebuild the same platform per member.
	effLimit := make([]float64, len(specs))
	defaults := make(map[string]float64)
	for i := range specs {
		spec := specs[i]
		if spec.LimitC == 0 && spec.PlatformSpec == nil {
			if d, ok := defaults[spec.Platform]; ok {
				effLimit[i] = d
				continue
			}
		}
		l, err := effectiveLimitC(spec)
		if err != nil {
			return nil, err
		}
		effLimit[i] = l
		if spec.LimitC == 0 && spec.PlatformSpec == nil {
			defaults[spec.Platform] = l
		}
	}
	subs := make([][]int, 0, len(order))
	for _, key := range order {
		sub := byKey[key]
		sort.SliceStable(sub, func(a, b int) bool { return effLimit[sub[a]] < effLimit[sub[b]] })
		subs = append(subs, sub)
	}
	return subs, nil
}

// effectiveLimitC resolves the thermal limit a scenario actually runs
// under: an explicit LimitC wins, otherwise the platform default. An
// inline spec's default goes through the same Celsius-Kelvin-Celsius
// round-trip the compiled platform applies, so the ordering this
// produces matches the limits the engine enforces bitwise.
func effectiveLimitC(spec Scenario) (float64, error) {
	if spec.LimitC != 0 {
		return spec.LimitC, nil
	}
	if spec.PlatformSpec != nil {
		return thermal.ToCelsius(thermal.ToKelvin(spec.PlatformSpec.ThermalLimitC)), nil
	}
	plat, err := LookupPlatform(spec.Platform, spec.Seed)
	if err != nil {
		return 0, err
	}
	return thermal.ToCelsius(plat.ThermalLimitK()), nil
}
