package mobisim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// countingSink retains scalar copies of what it saw, proving the
// streaming path carries the same data the recording sink materializes.
type countingSink struct {
	times  []float64
	totalW []float64
}

func (c *countingSink) OnSample(s *Sample) error {
	c.times = append(c.times, s.TimeS)
	c.totalW = append(c.totalW, s.TotalW)
	if len(s.NodeTempK) == 0 || len(s.RailW) == 0 || len(s.FreqHz) == 0 {
		return fmt.Errorf("sample at t=%v has empty channels", s.TimeS)
	}
	return nil
}

func testSpec(durationS float64) Scenario {
	return Scenario{
		Platform:  PlatformNexus6P,
		Workload:  "paper.io",
		Governor:  GovNone,
		DurationS: durationS,
		Seed:      1,
	}
}

func TestObserverSeesEverySample(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var sink countingSink
	eng, err := New(testSpec(1), WithObserver(&sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	total, ok := eng.TotalPowerSeries()
	if !ok {
		t.Fatal("recording sink missing")
	}
	if len(sink.times) != total.Len() {
		t.Fatalf("observer saw %d samples, recording sink %d", len(sink.times), total.Len())
	}
	for i, w := range sink.totalW {
		p := total.At(i)
		if p.TimeS != sink.times[i] || p.Value != w {
			t.Fatalf("sample %d diverges: observer (%v, %v) vs recording (%v, %v)",
				i, sink.times[i], w, p.TimeS, p.Value)
		}
	}
}

func TestWithoutRecordingKeepsMetricsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	run := func(opts ...Option) map[string]float64 {
		t.Helper()
		eng, err := New(testSpec(2), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Metrics()
	}
	recorded := run()
	streamed := run(WithoutRecording())
	if len(recorded) != len(streamed) {
		t.Fatalf("metric sets differ: %v vs %v", recorded, streamed)
	}
	for name, v := range recorded {
		if streamed[name] != v {
			t.Errorf("metric %s: %v with recording, %v without — observers must not change dynamics",
				name, v, streamed[name])
		}
	}
}

func TestStatsSinkMatchesRecordedSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var stats StatsSink
	eng, err := New(testSpec(2), WithObserver(&stats))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	total, ok := eng.TotalPowerSeries()
	if !ok {
		t.Fatal("recording sink missing")
	}
	if stats.Samples() != total.Len() {
		t.Errorf("sink saw %d samples, series has %d", stats.Samples(), total.Len())
	}
	if got, want := stats.MeanPowerW(), total.Mean(); got != want {
		t.Errorf("streamed mean power %v != recorded mean %v", got, want)
	}
	_, hi, err := total.MinMax()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakPowerW() != hi {
		t.Errorf("streamed peak power %v != recorded max %v", stats.PeakPowerW(), hi)
	}
	if stats.PeakTempC() <= 0 {
		t.Errorf("peak temp %v should be positive", stats.PeakTempC())
	}
}

func TestObserverErrorAbortsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	boom := errors.New("sink full")
	eng, err := New(testSpec(1), WithObserver(observerFunc(func(*Sample) error { return boom })))
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Run()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("run should surface the observer error, got %v", err)
	}
	if !strings.Contains(err.Error(), "observer") {
		t.Errorf("error should name the observer stage: %v", err)
	}
}

// observerFunc adapts a function to the Observer interface.
type observerFunc func(*Sample) error

func (f observerFunc) OnSample(s *Sample) error { return f(s) }
