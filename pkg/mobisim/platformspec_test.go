package mobisim

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"repro/internal/platform/frozen"
)

// smallDieSpec is a throttling-prone spec-defined platform used by the
// registry and novel-platform sweep tests: tiny thermal masses, a weak
// path to ambient, and a low limit, so governors have real work to do
// within a 2-second differential run.
func smallDieSpec() PlatformSpec {
	spec, err := ParsePlatformSpec([]byte(`{
  "name": "smalldie-test",
  "thermal_limit_c": 40,
  "nodes": [
    {"name": "little", "capacitance_j_per_k": 0.4},
    {"name": "big", "capacitance_j_per_k": 0.5},
    {"name": "gpu", "capacitance_j_per_k": 0.5},
    {"name": "case", "capacitance_j_per_k": 4, "g_ambient_w_per_k": 0.03}
  ],
  "couplings": [
    {"a": "little", "b": "case", "g_w_per_k": 0.3},
    {"a": "big", "b": "case", "g_w_per_k": 0.3},
    {"a": "gpu", "b": "case", "g_w_per_k": 0.25}
  ],
  "domains": [
    {"id": "little", "cores": 4, "ceff_f": 1.5e-10, "idle_w": 0.02, "leak_k": 1e-4,
     "opps": [{"freq_hz": 300000000, "voltage_v": 0.8}, {"freq_hz": 900000000, "voltage_v": 0.95}, {"freq_hz": 1400000000, "voltage_v": 1.1}]},
    {"id": "big", "cores": 2, "ceff_f": 5e-10, "idle_w": 0.04, "leak_k": 3e-4,
     "opps": [{"freq_hz": 300000000, "voltage_v": 0.85}, {"freq_hz": 1000000000, "voltage_v": 1.0}, {"freq_hz": 1600000000, "voltage_v": 1.15}]},
    {"id": "gpu", "cores": 1, "ceff_f": 1.8e-9, "idle_w": 0.03, "leak_k": 2e-4,
     "opps": [{"freq_hz": 150000000, "voltage_v": 0.8}, {"freq_hz": 350000000, "voltage_v": 0.95}, {"freq_hz": 550000000, "voltage_v": 1.05}]}
  ],
  "sensor": {"node": "big", "noise_k": 0.05, "resolution_k": 0.1}
}`))
	if err != nil {
		panic(err)
	}
	return spec
}

func TestRegisterPlatform(t *testing.T) {
	spec := smallDieSpec()
	if err := RegisterPlatform(spec); err != nil {
		t.Fatal(err)
	}
	// Idempotent for an identical spec.
	if err := RegisterPlatform(spec); err != nil {
		t.Fatalf("identical re-registration rejected: %v", err)
	}
	// Conflicting redefinition is an error.
	conflict := spec.Clone()
	conflict.ThermalLimitC = 80
	if err := RegisterPlatform(conflict); err == nil {
		t.Error("conflicting re-registration accepted")
	}
	// Built-in names are reserved.
	reserved := spec.Clone()
	reserved.Name = PlatformNexus6P
	if err := RegisterPlatform(reserved); err == nil {
		t.Error("built-in name registration accepted")
	}
	// Regression: a spec with an explicit empty couplings array (every
	// node ambient-coupled) stays idempotent under re-registration —
	// cloning must not collapse empty slices to nil and break the
	// DeepEqual no-op check.
	flat, err := ParsePlatformSpec([]byte(`{
	  "name": "flatdev-test", "thermal_limit_c": 50, "couplings": [],
	  "nodes": [
	    {"name": "little", "capacitance_j_per_k": 1, "g_ambient_w_per_k": 0.05},
	    {"name": "big", "capacitance_j_per_k": 1, "g_ambient_w_per_k": 0.05},
	    {"name": "gpu", "capacitance_j_per_k": 1, "g_ambient_w_per_k": 0.05}
	  ],
	  "domains": [
	    {"id": "little", "cores": 2, "ceff_f": 1e-10, "opps": [{"freq_hz": 500000000, "voltage_v": 0.9}]},
	    {"id": "big", "cores": 2, "ceff_f": 5e-10, "opps": [{"freq_hz": 1000000000, "voltage_v": 1.0}]},
	    {"id": "gpu", "cores": 1, "ceff_f": 2e-9, "opps": [{"freq_hz": 400000000, "voltage_v": 0.95}]}
	  ],
	  "sensor": {"node": "big"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterPlatform(flat); err != nil {
		t.Fatal(err)
	}
	if err := RegisterPlatform(flat); err != nil {
		t.Errorf("identical empty-couplings re-registration rejected: %v", err)
	}

	found := false
	for _, name := range RegisteredPlatforms() {
		if name == spec.Name {
			found = true
		}
	}
	if !found {
		t.Errorf("RegisteredPlatforms() = %v, missing %q", RegisteredPlatforms(), spec.Name)
	}
	for _, name := range KnownPlatforms() {
		if name == spec.Name {
			return
		}
	}
	t.Errorf("KnownPlatforms() = %v, missing registered %q", KnownPlatforms(), spec.Name)
}

func TestScenarioWithRegisteredAndInlinePlatform(t *testing.T) {
	spec := smallDieSpec()
	if err := RegisterPlatform(spec); err != nil {
		t.Fatal(err)
	}

	// By registered name.
	byName := Scenario{Platform: spec.Name, Workload: "gen-bursty", DurationS: 1, Seed: 3}
	byName.Normalize()
	if byName.Governor != GovNone {
		t.Errorf("custom platform governor defaulted to %q, want %q", byName.Governor, GovNone)
	}
	if err := byName.Validate(); err != nil {
		t.Fatal(err)
	}

	// Inline, platform name inherited from the spec.
	inline := Scenario{PlatformSpec: &spec, Workload: "gen-bursty", DurationS: 1, Seed: 3}
	inline.Normalize()
	if inline.Platform != spec.Name {
		t.Errorf("inline platform name not inherited: %q", inline.Platform)
	}
	if err := inline.Validate(); err != nil {
		t.Fatal(err)
	}

	// The two must simulate identically: same spec, same seed.
	run := func(s Scenario) map[string]float64 {
		t.Helper()
		eng, err := New(s, WithoutRecording())
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Metrics()
	}
	mName, mInline := run(byName), run(inline)
	if len(mName) == 0 || len(mName) != len(mInline) {
		t.Fatalf("metric sets differ in shape: %v vs %v", mName, mInline)
	}
	for k, v := range mName {
		if mInline[k] != v {
			t.Errorf("metric %s: registered %v != inline %v", k, v, mInline[k])
		}
	}

	// Platform-incompatible arms stay rejected on custom platforms.
	bad := Scenario{Platform: spec.Name, Workload: "paper.io", Governor: GovStepwise, DurationS: 1}
	if err := bad.Validate(); err == nil {
		t.Error("stepwise accepted on a custom platform")
	}
	// Name mismatch between scenario and inline spec is rejected.
	mismatch := Scenario{Platform: "other", PlatformSpec: &spec, Workload: "paper.io", Governor: GovNone, DurationS: 1}
	if err := mismatch.Validate(); err == nil {
		t.Error("platform/spec name mismatch accepted")
	}
}

// TestSweepMatchesFrozenPresetConstructors is the acceptance-criteria
// differential: a dual-platform sweep run against the production
// spec-compiled presets must serialize to exactly the bytes the frozen
// pre-refactor Go constructors produce — on the sequential path, the
// batched lockstep path, and under GOMAXPROCS 1 and 8.
func TestSweepMatchesFrozenPresetConstructors(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	m := dualPlatformMatrix()
	run := func(cfg SweepConfig, procs int) (jsonB, csvB []byte) {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		cfg.IncludeRaw = true
		out, err := RunSweep(context.Background(), m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return encodeSweep(t, out)
	}

	// Baseline: the frozen constructors, swapped into the lookup table
	// for the duration of the reference run. Not t.Parallel-safe by
	// design; no test in this package runs parallel sweeps.
	origNexus := builtinPlatformCtors[PlatformNexus6P]
	origOdroid := builtinPlatformCtors[PlatformOdroidXU3]
	builtinPlatformCtors[PlatformNexus6P] = frozen.Nexus6P
	builtinPlatformCtors[PlatformOdroidXU3] = frozen.OdroidXU3
	wantJSON, wantCSV := run(SweepConfig{Workers: 2}, 8)
	builtinPlatformCtors[PlatformNexus6P] = origNexus
	builtinPlatformCtors[PlatformOdroidXU3] = origOdroid

	cases := []struct {
		name  string
		cfg   SweepConfig
		procs int
	}{
		{"scalar", SweepConfig{Workers: 2}, 8},
		{"batched", SweepConfig{Workers: 2, BatchWidth: DefaultBatchWidth}, 8},
		{"scalar GOMAXPROCS=1", SweepConfig{Workers: 4}, 1},
		{"batched GOMAXPROCS=1", SweepConfig{Workers: 4, BatchWidth: 3}, 1},
	}
	for _, tc := range cases {
		gotJSON, gotCSV := run(tc.cfg, tc.procs)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%s: spec-compiled sweep JSON differs from frozen constructors:\n--- spec ---\n%s\n--- frozen ---\n%s",
				tc.name, gotJSON, wantJSON)
		}
		if !bytes.Equal(gotCSV, wantCSV) {
			t.Errorf("%s: spec-compiled sweep CSV differs from frozen constructors", tc.name)
		}
	}
}

// TestNovelPlatformGeneratorSweep pins the opened scenario space: a
// sweep over a spec-defined platform running a seeded generator
// workload must execute on both executors and serialize byte-identical
// output, including across GOMAXPROCS settings.
func TestNovelPlatformGeneratorSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	spec := smallDieSpec()
	if err := RegisterPlatform(spec); err != nil {
		t.Fatal(err)
	}
	m := Matrix{
		Platforms:  []string{spec.Name, PlatformOdroidXU3},
		Workloads:  []string{"gen-bursty", "gen-ramp+bml"},
		Governors:  []string{GovAppAware, GovNone},
		LimitsC:    []float64{38},
		Replicates: 2,
		DurationS:  2,
		BaseSeed:   5,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	run := func(cfg SweepConfig, procs int) (jsonB, csvB []byte) {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		cfg.IncludeRaw = true
		out, err := RunSweep(context.Background(), m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return encodeSweep(t, out)
	}
	wantJSON, wantCSV := run(SweepConfig{Workers: 1}, 8)
	for _, tc := range []struct {
		name  string
		cfg   SweepConfig
		procs int
	}{
		{"parallel", SweepConfig{Workers: 4}, 8},
		{"batched", SweepConfig{Workers: 2, BatchWidth: 4}, 8},
		{"batched GOMAXPROCS=1", SweepConfig{Workers: 4, BatchWidth: 4}, 1},
	} {
		gotJSON, gotCSV := run(tc.cfg, tc.procs)
		if !bytes.Equal(gotJSON, wantJSON) || !bytes.Equal(gotCSV, wantCSV) {
			t.Errorf("%s: novel-platform sweep output differs from sequential baseline", tc.name)
		}
	}
	// Seed replicates of a generator workload genuinely differ: the
	// sweep explores the stochastic space rather than rerunning one
	// script.
	out, err := RunSweep(context.Background(), Matrix{
		Platforms:  []string{spec.Name},
		Workloads:  []string{"gen-bursty"},
		Governors:  []string{GovNone},
		LimitsC:    []float64{0},
		Replicates: 2,
		DurationS:  2,
		BaseSeed:   5,
	}, SweepConfig{IncludeRaw: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("got %d raw results, want 2", len(out.Results))
	}
	a, b := out.Results[0].Metrics, out.Results[1].Metrics
	same := true
	for k, v := range a {
		if b[k] != v {
			same = false
		}
	}
	if same {
		t.Error("two generator seed replicates produced identical metrics; the generator is not consuming its seed")
	}
}
