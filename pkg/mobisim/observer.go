package mobisim

import (
	"repro/internal/sim"
	"repro/internal/thermal"
)

// Observer consumes periodic samples from a running engine; attach one
// with WithObserver. The engine publishes samples whether or not
// observers are attached, so observers can never change the simulated
// dynamics. Sample slices are reused between publishes — copy anything
// retained.
type Observer = sim.Observer

// Sample is one periodic observation: true node temperatures, the
// sensed temperature, per-rail power and per-domain frequencies.
type Sample = sim.Sample

// RecordingSink is the built-in observer that materializes samples
// into Series buffers — the engine's classic trace API.
type RecordingSink = sim.RecordingSink

// StatsSink is a constant-memory streaming observer that folds samples
// into scalar aggregates instead of materializing series — the shape
// sweep pools use for long runs. The zero value is ready to use.
type StatsSink struct {
	samples   int
	peakTempK float64
	sumPowerW float64
	peakW     float64
}

// OnSample implements Observer.
func (a *StatsSink) OnSample(s *Sample) error {
	a.samples++
	if s.MaxTempK > a.peakTempK {
		a.peakTempK = s.MaxTempK
	}
	a.sumPowerW += s.TotalW
	if s.TotalW > a.peakW {
		a.peakW = s.TotalW
	}
	return nil
}

// Samples returns how many observations were folded in.
func (a *StatsSink) Samples() int { return a.samples }

// PeakTempC returns the hottest observed node temperature in °C
// (0 before the first sample).
func (a *StatsSink) PeakTempC() float64 {
	if a.samples == 0 {
		return 0
	}
	return thermal.ToCelsius(a.peakTempK)
}

// MeanPowerW returns the mean of the sampled total power (0 before the
// first sample). Samples are equally spaced, so this matches the
// time-weighted mean over the sampled window.
func (a *StatsSink) MeanPowerW() float64 {
	if a.samples == 0 {
		return 0
	}
	return a.sumPowerW / float64(a.samples)
}

// PeakPowerW returns the largest sampled total power.
func (a *StatsSink) PeakPowerW() float64 { return a.peakW }
