package mobisim

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/sim"
)

var updateSnapshotGolden = flag.Bool("update-snapshot-golden", false,
	"rewrite the golden snapshot blob fixture")

// snapshotSteps converts a scenario duration to the engine step count,
// mirroring Engine.Run's rounding.
func snapshotSteps(e *Engine) int {
	return int(math.Round(e.Spec().DurationS / e.Sim().StepS()))
}

// finalSnapshot runs assertions-free snapshot extraction at end of run.
func finalSnapshot(t *testing.T, e *Engine) []byte {
	t.Helper()
	blob, err := e.Sim().Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return blob
}

// assertMetricsBitwiseEqual compares two metric maps with exact float
// bit equality — the determinism bar everything in this repo holds.
func assertMetricsBitwiseEqual(t *testing.T, label string, want, got map[string]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: metric count %d != %d", label, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing metric %q", label, k)
		}
		if math.Float64bits(w) != math.Float64bits(g) {
			t.Errorf("%s: metric %q: %v (%#x) != %v (%#x)",
				label, k, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
}

// roundTripScalar pins the tentpole property on one scenario: a run
// interrupted by Snapshot at step k and resumed by Restore in a fresh
// engine finishes in exactly the same state — snapshot-for-snapshot
// byte equality, not just matching metrics — as the uninterrupted run.
func roundTripScalar(t *testing.T, spec Scenario, opts ...Option) {
	t.Helper()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatalf("scenario: %v", err)
	}
	buildOpts := append([]Option{WithoutRecording()}, opts...)

	cold, err := New(spec, buildOpts...)
	if err != nil {
		t.Fatal(err)
	}
	total := snapshotSteps(cold)
	if total < 10 {
		t.Fatalf("scenario too short for a meaningful round trip: %d steps", total)
	}
	if err := cold.RunSteps(total); err != nil {
		t.Fatal(err)
	}
	coldFinal := finalSnapshot(t, cold)

	// k deliberately not aligned with any control/trace period.
	k := total/3 + 1

	interrupted, err := New(spec, buildOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := interrupted.RunSteps(k); err != nil {
		t.Fatal(err)
	}
	blob := finalSnapshot(t, interrupted)
	if err := interrupted.RunSteps(total - k); err != nil {
		t.Fatal(err)
	}
	if got := finalSnapshot(t, interrupted); !bytes.Equal(got, coldFinal) {
		t.Errorf("engine state diverged after taking a snapshot mid-run (snapshot must not perturb the run)")
	}

	restored, err := New(spec, buildOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Sim().Restore(blob); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// Restore must reposition time exactly.
	if w := float64(k) * restored.Sim().StepS(); restored.NowS() != w {
		t.Fatalf("restored clock %v, want %v", restored.NowS(), w)
	}
	if err := restored.RunSteps(total - k); err != nil {
		t.Fatal(err)
	}
	if got := finalSnapshot(t, restored); !bytes.Equal(got, coldFinal) {
		t.Errorf("restored run final state differs from uninterrupted run")
	}
	assertMetricsBitwiseEqual(t, "restored metrics", cold.Metrics(), restored.Metrics())
}

func TestSnapshotRoundTripBuiltinPlatforms(t *testing.T) {
	cases := []Scenario{
		{Platform: PlatformNexus6P, Workload: "3dmark+bml", DurationS: 2, Seed: 7},
		{Platform: PlatformNexus6P, Workload: "paper.io", Governor: GovAppAware, LimitC: 55, DurationS: 2, Seed: 3},
		{Platform: PlatformOdroidXU3, Workload: "3dmark+bml", Governor: GovAppAware, LimitC: 58, DurationS: 2, Seed: 1, ModelOnlyBML: true},
		{Platform: PlatformOdroidXU3, Workload: "nenamark", Governor: GovIPA, DurationS: 2, Seed: 9},
		{Platform: PlatformOdroidXU3, Workload: "gen-bursty+bml", Governor: GovNone, DurationS: 2, Seed: 11},
	}
	for _, spec := range cases {
		spec := spec
		t.Run(fmt.Sprintf("%s_%s_%s", spec.Platform, spec.Workload, spec.Governor), func(t *testing.T) {
			roundTripScalar(t, spec)
		})
	}
}

func TestSnapshotRoundTripWithDAQ(t *testing.T) {
	spec := Scenario{Platform: PlatformNexus6P, Workload: "hangouts", DurationS: 2, Seed: 5}
	roundTripScalar(t, spec, WithDAQ("pxie4081", DefaultDAQConfig()))
}

func TestSnapshotRoundTripPlatformCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "platforms", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("platform corpus has %d specs, want >= 3", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			spec, err := LoadPlatformSpec(path)
			if err != nil {
				t.Fatal(err)
			}
			roundTripScalar(t, Scenario{
				PlatformSpec: &spec,
				Workload:     "gen-periodic+bml",
				Governor:     GovAppAware,
				LimitC:       60,
				DurationS:    2,
				Seed:         4,
			})
		})
	}
}

// TestSnapshotRoundTripBatched pins the same property through the
// batched lockstep path, under both serial and parallel schedulers:
// lanes snapshotted mid-batch and restored into fresh lanes coupled on
// a new BatchEngine finish byte-identical to an uninterrupted scalar
// run of each lane.
func TestSnapshotRoundTripBatched(t *testing.T) {
	limits := []float64{55, 58, 61, 64}
	specFor := func(limitC float64) Scenario {
		s := Scenario{
			Platform:     PlatformOdroidXU3,
			Workload:     "3dmark+bml",
			Governor:     GovAppAware,
			LimitC:       limitC,
			DurationS:    2,
			Seed:         1,
			ModelOnlyBML: true,
		}
		s.Normalize()
		return s
	}
	for _, procs := range []int{1, 8} {
		procs := procs
		t.Run(fmt.Sprintf("gomaxprocs_%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

			// Reference: scalar uninterrupted run per lane.
			finals := make([][]byte, len(limits))
			for i, lim := range limits {
				eng, err := New(specFor(lim), WithoutRecording())
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.RunSteps(snapshotSteps(eng)); err != nil {
					t.Fatal(err)
				}
				finals[i] = finalSnapshot(t, eng)
			}

			newLanes := func() ([]*Engine, []*sim.Engine) {
				facades := make([]*Engine, len(limits))
				lanes := make([]*sim.Engine, len(limits))
				for i, lim := range limits {
					eng, err := New(specFor(lim), WithoutRecording())
					if err != nil {
						t.Fatal(err)
					}
					facades[i] = eng
					lanes[i] = eng.Sim()
				}
				return facades, lanes
			}

			facades, lanes := newLanes()
			be, err := sim.NewBatchEngine(lanes)
			if err != nil {
				t.Fatal(err)
			}
			total := snapshotSteps(facades[0])
			k := total/3 + 1
			if err := be.RunSteps(k); err != nil {
				t.Fatal(err)
			}
			blobs := make([][]byte, len(facades))
			for i, f := range facades {
				blobs[i] = finalSnapshot(t, f)
			}

			// Fork: fresh lanes restored from the mid-batch snapshots,
			// coupled on a new batch engine.
			forked, forkLanes := newLanes()
			for i, f := range forked {
				if err := f.Sim().Restore(blobs[i]); err != nil {
					t.Fatalf("lane %d restore: %v", i, err)
				}
			}
			fbe, err := sim.NewBatchEngine(forkLanes)
			if err != nil {
				t.Fatal(err)
			}
			if err := fbe.RunSteps(total - k); err != nil {
				t.Fatal(err)
			}
			for i, f := range forked {
				if got := finalSnapshot(t, f); !bytes.Equal(got, finals[i]) {
					t.Errorf("lane %d (limit %g): batched fork diverged from scalar cold run", i, limits[i])
				}
			}

			// The original batch, continued, must also match.
			if err := be.RunSteps(total - k); err != nil {
				t.Fatal(err)
			}
			for i, f := range facades {
				if got := finalSnapshot(t, f); !bytes.Equal(got, finals[i]) {
					t.Errorf("lane %d (limit %g): batched run diverged from scalar cold run", i, limits[i])
				}
			}
		})
	}
}

// TestSnapshotRestoreErrors pins the failure modes: garbage, truncated
// blobs, foreign versions, and restoring into a mismatched engine all
// fail loudly instead of silently corrupting state.
func TestSnapshotRestoreErrors(t *testing.T) {
	spec := Scenario{Platform: PlatformOdroidXU3, Workload: "3dmark+bml", Governor: GovAppAware, LimitC: 60, DurationS: 1, Seed: 2, ModelOnlyBML: true}
	spec.Normalize()
	eng, err := New(spec, WithoutRecording())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSteps(500); err != nil {
		t.Fatal(err)
	}
	blob := finalSnapshot(t, eng)

	fresh := func() *Engine {
		e, err := New(spec, WithoutRecording())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	if err := fresh().Sim().Restore(nil); err == nil {
		t.Error("restoring an empty blob succeeded")
	}
	if err := fresh().Sim().Restore([]byte("not a snapshot at all.....")); err == nil {
		t.Error("restoring garbage succeeded")
	}
	if err := fresh().Sim().Restore(blob[:len(blob)/2]); err == nil {
		t.Error("restoring a truncated blob succeeded")
	}
	if err := fresh().Sim().Restore(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Error("restoring a blob with trailing bytes succeeded")
	}
	bumped := append([]byte(nil), blob...)
	bumped[8]++ // version field
	if err := fresh().Sim().Restore(bumped); err == nil {
		t.Error("restoring a future-version blob succeeded")
	}

	other := Scenario{Platform: PlatformNexus6P, Workload: "3dmark", DurationS: 1, Seed: 2}
	other.Normalize()
	mismatch, err := New(other, WithoutRecording())
	if err != nil {
		t.Fatal(err)
	}
	if err := mismatch.Sim().Restore(blob); err == nil {
		t.Error("restoring an odroid snapshot into a nexus engine succeeded")
	}
}

// TestSnapshotGoldenBlob pins the serialized layout: the checked-in
// fixture must restore into today's engine and the engine must
// re-serialize it byte-for-byte. A layout change without a version
// bump fails here first. Refresh with -update-snapshot-golden.
func TestSnapshotGoldenBlob(t *testing.T) {
	spec := Scenario{
		Platform:     PlatformOdroidXU3,
		Workload:     "3dmark+bml",
		Governor:     GovAppAware,
		LimitC:       60,
		DurationS:    1,
		Seed:         42,
		ModelOnlyBML: true,
	}
	spec.Normalize()
	golden := filepath.Join("testdata", "snapshot_v1.golden")

	if *updateSnapshotGolden {
		eng, err := New(spec, WithoutRecording())
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSteps(400); err != nil {
			t.Fatal(err)
		}
		blob := finalSnapshot(t, eng)
		if err := os.WriteFile(golden, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(blob))
	}

	blob, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-snapshot-golden)", err)
	}
	eng, err := New(spec, WithoutRecording())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Sim().Restore(blob); err != nil {
		t.Fatalf("restore golden: %v", err)
	}
	resaved := finalSnapshot(t, eng)
	if !bytes.Equal(resaved, blob) {
		t.Fatalf("restore∘snapshot is not the identity on the golden blob (layout drift without a version bump?)")
	}
	// The restored engine is usable: it finishes the scenario.
	if err := eng.RunSteps(600); err != nil {
		t.Fatalf("restored engine cannot continue: %v", err)
	}
}
