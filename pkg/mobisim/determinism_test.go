package mobisim

// Scheduler-independence pin for the sweep engine, enforced under -race
// in CI: the serialized sweep output must be byte-identical whether the
// Go runtime schedules the worker pool on one OS thread or eight, on
// top of the existing worker-count parity. Combined with the step
// loop's bitwise determinism this is what makes sweep results citable:
// no run ever depends on the machine it happened to execute on.

import (
	"bytes"
	"context"
	"runtime"
	"testing"
)

func TestSweepBytesIdenticalAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	matrix := Matrix{
		Platforms:  []string{PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{GovAppAware},
		LimitsC:    []float64{55, 65},
		Replicates: 2,
		DurationS:  2,
		BaseSeed:   42,
	}

	runAt := func(procs int) (jsonB, csvB []byte) {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		out, err := RunSweep(context.Background(), matrix, SweepConfig{Workers: 8, IncludeRaw: true})
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := out.EncodeJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := out.EncodeCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}

	json1, csv1 := runAt(1)
	json8, csv8 := runAt(8)

	if !bytes.Equal(json1, json8) {
		t.Errorf("JSON sweep output differs between GOMAXPROCS=1 and GOMAXPROCS=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", json1, json8)
	}
	if !bytes.Equal(csv1, csv8) {
		t.Errorf("CSV sweep output differs between GOMAXPROCS=1 and GOMAXPROCS=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", csv1, csv8)
	}
}
