// Command mobsim runs a single simulation scenario and prints a run
// summary: frame rate, temperatures, power, and frequency residency.
// It is the general-purpose entry point to the simulator; cmd/repro
// drives the same machinery for the paper's exact artifacts.
//
// Scenarios come from a declarative JSON spec file (the pkg/mobisim
// contract) or from the legacy flags. Spec-defined platforms register
// via -platform-spec and are then addressed by name, with generated
// ("gen-*") workloads opening the app axis too:
//
//	mobsim -scenario testdata/nexus_paperio.json
//	mobsim -platform nexus6p -app paper.io -throttle -dur 140
//	mobsim -platform odroid-xu3 -app 3dmark -mode proposed
//	mobsim -platform-spec testdata/platforms/smalldie.json -platform smalldie -app gen-bursty -dur 60
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/pkg/mobisim"
)

func main() {
	scenarioPath := flag.String("scenario", "", "JSON scenario spec file (overrides the legacy scenario flags)")
	platformSpec := flag.String("platform-spec", "", "comma-separated platform spec JSON files to register; their names become valid -platform values")
	plat := flag.String("platform", "nexus6p", "platform: nexus6p, odroid-xu3, or a spec-registered name")
	app := flag.String("app", "paper.io", "app: paper.io, stickman-hook, amazon, hangouts, facebook (nexus6p); 3dmark, nenamark (odroid-xu3); gen-bursty, gen-periodic, gen-ramp, gen-perturb (any platform)")
	throttle := flag.Bool("throttle", false, "enable the default thermal governor (nexus6p)")
	mode := flag.String("mode", "alone", "odroid scenario: alone, bml, proposed")
	dur := flag.Float64("dur", 140, "run duration in seconds")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	for _, path := range strings.Split(*platformSpec, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		if _, err := mobisim.RegisterPlatformFile(path); err != nil {
			fatal(err)
		}
	}

	spec, err := buildSpec(*scenarioPath, *plat, *app, *throttle, *mode, *dur, *seed)
	if err != nil {
		fatal(err)
	}
	eng, err := mobisim.New(spec)
	if err != nil {
		fatal(err)
	}
	if err := eng.Run(); err != nil {
		fatal(err)
	}
	printRun(eng)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobsim:", err)
	os.Exit(1)
}

// buildSpec loads the spec file, or assembles a spec from the legacy
// flag vocabulary (nexus: -throttle picks stepwise vs none; odroid:
// -mode picks the Section IV-C arm).
func buildSpec(path, plat, app string, throttle bool, mode string, dur float64, seed int64) (mobisim.Scenario, error) {
	if path != "" {
		return mobisim.LoadScenario(path)
	}
	spec := mobisim.Scenario{
		Platform:  plat,
		Workload:  app,
		DurationS: dur,
		Seed:      seed,
	}
	switch plat {
	case mobisim.PlatformNexus6P:
		if app == "3dmark" || app == "nenamark" {
			return mobisim.Scenario{}, fmt.Errorf("app %q is an odroid-xu3 benchmark (see -app help)", app)
		}
		spec.Governor = mobisim.GovNone
		if throttle {
			spec.Governor = mobisim.GovStepwise
		}
	case mobisim.PlatformOdroidXU3:
		if app != "3dmark" && app != "nenamark" && !strings.HasPrefix(app, "gen-") {
			return mobisim.Scenario{}, fmt.Errorf("unknown odroid-xu3 benchmark %q (want 3dmark, nenamark or a gen-* workload)", app)
		}
		switch mode {
		case "alone":
			spec.Governor = mobisim.GovIPA
		case "bml":
			spec.Governor = mobisim.GovIPA
			spec.Workload += mobisim.WorkloadSuffixBML
		case "proposed":
			spec.Governor = mobisim.GovAppAware
			spec.Workload += mobisim.WorkloadSuffixBML
		default:
			return mobisim.Scenario{}, fmt.Errorf("unknown mode %q (want alone, bml, proposed)", mode)
		}
	default:
		// Spec-registered platforms: the preset-calibrated convenience
		// flags do not apply, and silently ignoring them would simulate
		// a different arm than the user asked for.
		if throttle {
			return mobisim.Scenario{}, fmt.Errorf("-throttle applies to %s only; use a -scenario spec with a governor field for platform %q",
				mobisim.PlatformNexus6P, plat)
		}
		if mode != "alone" {
			return mobisim.Scenario{}, fmt.Errorf("-mode applies to %s only; use a -scenario spec for platform %q",
				mobisim.PlatformOdroidXU3, plat)
		}
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return mobisim.Scenario{}, err
	}
	return spec, nil
}

func printRun(eng *mobisim.Engine) {
	spec := eng.Spec()
	fmt.Printf("%s / %s / %s / %gs (seed %d)\n",
		spec.Platform, spec.Workload, spec.Governor, spec.DurationS, spec.Seed)

	m := eng.Metrics()
	if v, ok := m[mobisim.MetricMedianFPS]; ok {
		fmt.Printf("  median FPS: %.1f\n", v)
	}
	if v, ok := m[mobisim.MetricGT1FPS]; ok {
		fmt.Printf("  GT1 %.1f FPS, GT2 %.1f FPS\n", v, m[mobisim.MetricGT2FPS])
	}
	if v, ok := m[mobisim.MetricScore]; ok {
		fmt.Printf("  Nenamark score: %.1f levels\n", v)
	}
	if v, ok := m[mobisim.MetricBMLIterations]; ok {
		fmt.Printf("  BML iterations: %.0f\n", v)
	}
	if gov := eng.AppAware(); gov != nil {
		fmt.Printf("  appaware: %d migrations, %d predictions\n",
			gov.Migrations(), gov.Predictions())
		for _, ev := range gov.Events() {
			fmt.Printf("    t=%.1fs %s pid=%d fixed=%.1f°C tta=%.1fs\n",
				ev.TimeS, ev.Kind, ev.PID, thermal.ToCelsius(ev.PredictedFixedK), ev.TimeToLimitS)
		}
	}
	printEngineSummary(eng)
}

func printEngineSummary(eng *mobisim.Engine) {
	fmt.Printf("  max temp seen: %.1f°C   sensor end: %.1f°C\n",
		eng.MaxTempSeenC(), thermal.ToCelsius(eng.Sim().SensorTempK()))
	for _, name := range eng.Platform().NodeNames() {
		s, ok := eng.NodeTempSeries(name)
		if !ok || s.Len() == 0 {
			continue
		}
		last, _ := s.Last()
		fmt.Printf("  node %-6s end %.1f°C max %.1f°C\n", name, last.Value, s.Max())
	}
	meter := eng.Sim().Meter()
	var shares [power.NumRails]float64
	if err := meter.SharesInto(shares[:]); err != nil {
		fatal(err)
	}
	fmt.Printf("  avg power: %.2f W  (", meter.AveragePowerW())
	for i, r := range mobisim.Rails() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s %.0f%%", r, shares[r]*100)
	}
	fmt.Println(")")
	for _, id := range mobisim.Domains() {
		dom := eng.Platform().Domain(id)
		fmt.Printf("  residency %-6s:", id)
		for _, f := range dom.Table().Frequencies() {
			share := dom.ResidencyShare()[f]
			if share >= 0.005 {
				fmt.Printf("  %s %.0f%%", dvfs.MHz(f), share*100)
			}
		}
		fmt.Printf("  (cap %d, %d transitions)\n", dom.Cap(), dom.Transitions())
	}
}
