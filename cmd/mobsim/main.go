// Command mobsim runs a single app scenario on a simulated platform and
// prints a run summary: frame rate, temperatures, power, and frequency
// residency. It is the general-purpose entry point to the simulator;
// cmd/repro drives the same machinery for the paper's exact artifacts.
//
// Usage:
//
//	mobsim -platform nexus6p -app paper.io -throttle -dur 140
//	mobsim -platform odroid-xu3 -app 3dmark -bml -mode proposed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dvfs"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	plat := flag.String("platform", "nexus6p", "platform: nexus6p or odroid-xu3")
	app := flag.String("app", "paper.io", "app: paper.io, stickman-hook, amazon, hangouts, facebook (nexus6p); 3dmark, nenamark (odroid-xu3)")
	throttle := flag.Bool("throttle", false, "enable the default thermal governor (nexus6p)")
	mode := flag.String("mode", "alone", "odroid scenario: alone, bml, proposed")
	dur := flag.Float64("dur", 140, "run duration in seconds")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var err error
	switch *plat {
	case "nexus6p":
		err = runNexus(*app, *throttle, *seed)
	case "odroid-xu3":
		err = runOdroid(*app, *mode, *dur, *seed)
	default:
		err = fmt.Errorf("unknown platform %q", *plat)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobsim:", err)
		os.Exit(1)
	}
}

func runNexus(app string, throttle bool, seed int64) error {
	run, err := experiments.RunNexusApp(app, throttle, seed)
	if err != nil {
		return err
	}
	fmt.Printf("nexus6p / %s / throttle=%v / %ds\n", app, throttle, experiments.NexusDurationS)
	fmt.Printf("  median FPS: %.1f\n", run.App.MedianFPS())
	printEngineSummary(run.Engine)
	return nil
}

func runOdroid(bench, modeStr string, dur float64, seed int64) error {
	var mode experiments.Mode
	switch modeStr {
	case "alone":
		mode = experiments.Alone
	case "bml":
		mode = experiments.WithBML
	case "proposed":
		mode = experiments.Proposed
	default:
		return fmt.Errorf("unknown mode %q (want alone, bml, proposed)", modeStr)
	}
	run, err := experiments.RunOdroid(bench, mode, dur, seed)
	if err != nil {
		return err
	}
	fmt.Printf("odroid-xu3 / %s / %s / %gs\n", bench, mode, dur)
	switch b := run.Bench.(type) {
	case *workload.ThreeDMark:
		fmt.Printf("  GT1 %.1f FPS, GT2 %.1f FPS\n", b.GT1FPS(), b.GT2FPS())
	case *workload.Nenamark:
		fmt.Printf("  Nenamark score: %.1f levels\n", b.Score())
	}
	if run.BML != nil {
		fmt.Printf("  BML iterations: %d\n", run.BML.Iterations())
	}
	if run.Governor != nil {
		fmt.Printf("  appaware: %d migrations, %d predictions\n",
			run.Governor.Migrations(), run.Governor.Predictions())
		for _, ev := range run.Governor.Events() {
			fmt.Printf("    t=%.1fs %s pid=%d fixed=%.1f°C tta=%.1fs\n",
				ev.TimeS, ev.Kind, ev.PID, ev.PredictedFixedK-273.15, ev.TimeToLimitS)
		}
	}
	printEngineSummary(run.Engine)
	return nil
}

func printEngineSummary(e *sim.Engine) {
	fmt.Printf("  max temp seen: %.1f°C   sensor end: %.1f°C\n",
		e.MaxTempSeenK()-273.15, e.SensorTempK()-273.15)
	for _, name := range []string{"big", "little", "gpu", "mem", "pkg", "board", "skin"} {
		s := e.NodeTempSeries(name)
		if s == nil || s.Len() == 0 {
			continue
		}
		last, _ := s.Last()
		fmt.Printf("  node %-6s end %.1f°C max %.1f°C\n", name, last.Value, s.Max())
	}
	m := e.Meter()
	fmt.Printf("  avg power: %.2f W  (", m.AveragePowerW())
	for i, r := range power.Rails() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s %.0f%%", r, m.Share(r)*100)
	}
	fmt.Println(")")
	for _, id := range platform.DomainIDs() {
		dom := e.Platform().Domain(id)
		fmt.Printf("  residency %-6s:", id)
		for _, f := range dom.Table().Frequencies() {
			share := dom.ResidencyShare()[f]
			if share >= 0.005 {
				fmt.Printf("  %s %.0f%%", dvfs.MHz(f), share*100)
			}
		}
		fmt.Printf("  (cap %d, %d transitions)\n", dom.Cap(), dom.Transitions())
	}
}
