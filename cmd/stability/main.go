// Command stability analyzes the power-temperature fixed-point
// structure of a lumped platform model (Section IV-A of the paper):
// stability class, fixed points, critical power, and time-to-violation
// estimates for a given dynamic power.
//
// Usage:
//
//	stability                      # paper's Figure 7 parameters, 2 W
//	stability -power 5.5           # critically stable point
//	stability -power 3 -limit 70   # include time-to-limit estimate
//	stability -sweep 0.5:8:0.5     # classify a power sweep
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/stability"
	"repro/internal/thermal"
)

func main() {
	pd := flag.Float64("power", 2.0, "dynamic power in watts")
	ambient := flag.Float64("ambient", 0, "ambient temperature in °C (0 = model default)")
	limit := flag.Float64("limit", 0, "optional thermal limit in °C for time-to-limit")
	from := flag.Float64("from", 0, "starting temperature in °C for transient estimates (0 = ambient)")
	sweep := flag.String("sweep", "", "power sweep lo:hi:step in watts")
	flag.Parse()

	p := stability.DefaultOdroidParams()
	if *ambient != 0 {
		p.AmbientK = thermal.ToKelvin(*ambient)
	}

	crit, err := p.CriticalPower()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("lumped model: R=%.2f K/W  C=%.1f J/K  Ta=%.1f°C  κ=%.4g  Q=%.0f K\n",
		p.ResistanceKPerW, p.CapacitanceJPerK, thermal.ToCelsius(p.AmbientK), p.LeakScale, p.ActivationK)
	fmt.Printf("critical power: %.3f W (two fixed points below, runaway above)\n\n", crit)

	if *sweep != "" {
		lo, hi, step, err := parseSweep(*sweep)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%8s %18s %12s %12s\n", "Pd (W)", "class", "stable (°C)", "unstable (°C)")
		for w := lo; w <= hi+1e-9; w += step {
			an, err := p.Analyze(w)
			if err != nil {
				fatal(err)
			}
			stable, unstable := "-", "-"
			if an.Class != stability.Runaway {
				stable = fmt.Sprintf("%.1f", thermal.ToCelsius(an.StableTempK))
				unstable = fmt.Sprintf("%.1f", thermal.ToCelsius(an.UnstableTempK))
			}
			fmt.Printf("%8.2f %18s %12s %12s\n", w, an.Class, stable, unstable)
		}
		return
	}

	an, err := p.Analyze(*pd)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Pd = %.2f W: %s\n", *pd, an.Class)
	if an.Class != stability.Runaway {
		fmt.Printf("  stable fixed point:   θ=%.4f  T=%.1f°C\n", an.StableTheta, thermal.ToCelsius(an.StableTempK))
		fmt.Printf("  unstable fixed point: θ=%.4f  T=%.1f°C\n", an.UnstableTheta, thermal.ToCelsius(an.UnstableTempK))
		start := p.AmbientK
		if *from != 0 {
			start = thermal.ToKelvin(*from)
		}
		tfp, err := p.TimeToFixedPoint(*pd, start, 0.5, 3600)
		if err == nil && !math.IsInf(tfp, 1) {
			fmt.Printf("  time to fixed point from %.1f°C: %.1f s\n", thermal.ToCelsius(start), tfp)
		}
		if *limit != 0 {
			tta, err := p.TimeToThreshold(*pd, start, thermal.ToKelvin(*limit), 3600)
			if err == nil {
				if math.IsInf(tta, 1) {
					fmt.Printf("  %.1f°C limit never reached (fixed point below it)\n", *limit)
				} else {
					fmt.Printf("  time to %.1f°C limit: %.1f s\n", *limit, tta)
				}
			}
		}
	} else {
		fmt.Println("  no fixed points: thermal runaway at this power")
	}
}

func parseSweep(s string) (lo, hi, step float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("sweep must be lo:hi:step, got %q", s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("sweep component %q: %w", p, err)
		}
		vals[i] = v
	}
	if vals[2] <= 0 || vals[1] < vals[0] {
		return 0, 0, 0, fmt.Errorf("sweep %q must have hi >= lo and step > 0", s)
	}
	return vals[0], vals[1], vals[2], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stability:", err)
	os.Exit(1)
}
