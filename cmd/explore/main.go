// Command explore runs a seeded design-space search over scenario and
// platform parameters: it loads a declarative optimize spec (objective,
// constraints, mutation axes), hill-climbs through the induced grid with
// every generation evaluated as one lockstep batch, and emits the full
// search trace as JSON or CSV. The trajectory is a pure function of the
// spec: identical seeds produce byte-identical traces regardless of
// -workers, -batch, warm-start grouping, or cache state.
//
// Usage:
//
//	explore -spec search.json                        # run the committed spec
//	explore -spec search.json -seed 9                # same spec, different trajectory
//	explore -spec search.json -generations 64        # deeper search
//	explore -spec search.json -format csv            # flat per-candidate rows
//	explore -spec search.json -cache-dir ~/.cache/mobisim  # share the simd result cache
//	explore -spec search.json -daemon http://localhost:8377  # evaluate cells on a simd daemon
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/simd"
	"repro/pkg/mobisim"
	"repro/pkg/simclient"
)

func main() {
	var (
		specPath     = flag.String("spec", "", "optimize spec JSON file (required)")
		platformSpec = flag.String("platform-spec", "", "platform spec JSON file to register; its name becomes a valid base-scenario platform")
		seed         = flag.Int64("seed", 0, "override the spec's search seed")
		generations  = flag.Int("generations", 0, "override the spec's generation budget")
		neighbors    = flag.Int("neighbors", 0, "override the spec's neighbors per generation")
		patience     = flag.Int("patience", 0, "override the spec's convergence patience")
		workers      = flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS; never changes output bytes)")
		batch        = flag.Int("batch", 0, "lockstep batch width for candidate evaluation (0 = default width; never changes output bytes)")
		noWarmStart  = flag.Bool("no-warm-start", false, "disable prefix-snapshot warm-start grouping (output bytes are identical either way)")
		cacheDir     = flag.String("cache-dir", "", "content-addressed result cache root shared with the simd daemon; cached cells skip simulation (trajectory bytes are identical either way)")
		daemonURL    = flag.String("daemon", "", "base URL of a running simd daemon; cache-miss cells are evaluated remotely per generation, retried with backoff across daemon restarts (trajectory bytes are identical either way)")
		format       = flag.String("format", "json", "output format: json or csv")
	)
	flag.Parse()

	if *specPath == "" {
		fatal(fmt.Errorf("-spec is required"))
	}
	render, err := pickRenderer(*format, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if *platformSpec != "" {
		name, err := mobisim.RegisterPlatformFile(*platformSpec)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "explore: registered platform %q from %s\n", name, *platformSpec)
	}

	spec, err := mobisim.LoadOptimize(*specPath)
	if err != nil {
		fatal(err)
	}
	// Flag overrides replace spec knobs only when set on the command
	// line, so a spec's own zero-value defaults stay intact.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			spec.Seed = *seed
		case "generations":
			spec.MaxGenerations = *generations
		case "neighbors":
			spec.Neighbors = *neighbors
		case "patience":
			spec.Patience = *patience
		}
	})
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	cfg := mobisim.OptimizeConfig{
		Workers:     *workers,
		BatchWidth:  *batch,
		NoWarmStart: *noWarmStart,
	}
	if *cacheDir != "" {
		cache, err := simd.NewCache(*cacheDir, 0)
		if err != nil {
			fatal(err)
		}
		cfg.Cache = cellCache{cache}
	}
	if *daemonURL != "" {
		c := simclient.New(*daemonURL)
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "explore: "+format+"\n", args...)
		}
		cfg.Runner = &simclient.Runner{Client: c}
	}

	// Ctrl-C cancels the search: in-flight generations stop cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "explore: %s %s over %d mutation axes, seed %d\n",
		spec.Objective.Goal, spec.Objective.Metric, len(spec.Mutations), spec.Seed)

	start := time.Now()
	res, err := mobisim.Optimize(ctx, spec, cfg)
	if err != nil {
		fatal(err)
	}
	summary := fmt.Sprintf("explore: %d generations, %d candidates, %d cells simulated",
		len(res.Generations), res.Evaluated, res.Cells)
	if res.CacheHits > 0 {
		summary += fmt.Sprintf(", %d from cache", res.CacheHits)
	}
	if res.Best != nil {
		summary += fmt.Sprintf("; best %s=%g", spec.Objective.Metric, res.Best.Objective)
	} else {
		summary += "; no feasible candidate"
	}
	fmt.Fprintf(os.Stderr, "%s (%s, %.1fs)\n", summary, res.StopReason, time.Since(start).Seconds())

	if err := render(res); err != nil {
		fatal(err)
	}
}

// cellCache adapts the simd daemon's two-tier disk cache to the
// optimizer's CellCache interface.
type cellCache struct{ c *simd.Cache }

func (a cellCache) Get(key uint64) (map[string]float64, bool) {
	m, tier := a.c.Get(key)
	return m, tier != simd.TierMiss
}

func (a cellCache) Put(key uint64, metrics map[string]float64) {
	// A failed write only costs a future cache hit; the search result
	// is already in memory.
	_ = a.c.Put(key, metrics)
}

func pickRenderer(format string, w io.Writer) (func(res *mobisim.SearchResult) error, error) {
	switch format {
	case "json":
		return func(res *mobisim.SearchResult) error { return res.EncodeJSON(w) }, nil
	case "csv":
		return func(res *mobisim.SearchResult) error { return res.EncodeCSV(w) }, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want json or csv)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explore:", err)
	os.Exit(1)
}
