// Command bench runs the repository's core performance benchmarks
// in-process (via testing.Benchmark, the exact bodies behind the
// `go test -bench` entry points) and writes one machine-readable point
// of the perf trajectory. Each PR that touches the hot path appends a
// committed BENCH_<PR>.json so performance history lives in the repo
// next to the code that produced it.
//
// Usage:
//
//	bench -out BENCH_PR4.json          # full trajectory point
//	bench -quick                       # step benchmarks only (CI smoke)
//
// Output schema ("mobisim-bench/1", documented in README):
//
//	{
//	  "schema": "mobisim-bench/1",
//	  "go": "go1.24.0", "goos": "linux", "goarch": "amd64", "cpus": 8,
//	  "benchmarks": [
//	    {"name": "EngineStep", "ns_per_op": 580.1,
//	     "allocs_per_op": 0, "bytes_per_op": 0,
//	     "metrics": {"ns/lane-step": ...}},   // ReportMetric extras
//	    ...
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchkit"
)

// point is one benchmark measurement of the trajectory.
type point struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// trajectory is the full output document.
type trajectory struct {
	Schema     string  `json:"schema"`
	Go         string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPUs       int     `json:"cpus"`
	Benchmarks []point `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	quick := flag.Bool("quick", false, "run only the per-step benchmarks (skip the sweeps)")
	flag.Parse()

	type entry struct {
		name string
		fn   func(*testing.B)
	}
	entries := []entry{
		{"EngineStep", benchkit.EngineStep},
		{"EngineStepForked", benchkit.ForkedEngineStep},
		{"BatchEngineStep/width-8", benchkit.BatchEngineStep(8)},
		{"BatchEngineStepObserved/width-8", benchkit.BatchEngineStepObserved(8)},
		{"ExploreCandidateStep/width-8", benchkit.ExploreCandidateStep(8)},
	}
	if !*quick {
		entries = append(entries,
			entry{"ExploreGeneration/cold", benchkit.ExploreGenerationCold},
			entry{"ExploreGeneration/warm", benchkit.ExploreGenerationWarm},
			entry{"SweepParallel", benchkit.SweepParallel(0)},
			entry{"SweepBatched/width-8", benchkit.SweepBatched(8)},
			entry{"SweepWarmColdBaseline/width-8", benchkit.SweepWarmColdBaseline(8)},
			entry{"SweepWarm/batched-8", benchkit.SweepWarm(8)},
			entry{"DaemonSweepCold", benchkit.DaemonSweepCold},
			entry{"DaemonSweepColdBatched", benchkit.DaemonSweepColdBatched},
			entry{"DaemonSweepWarm", benchkit.DaemonSweepWarm},
		)
	}

	doc := trajectory{
		Schema: "mobisim-bench/1",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	for _, e := range entries {
		fmt.Fprintf(os.Stderr, "bench: running %s...\n", e.name)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			e.fn(b)
		})
		p := point{
			Name:        e.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		}
		if len(res.Extra) > 0 {
			p.Metrics = make(map[string]float64, len(res.Extra))
			for k, v := range res.Extra {
				p.Metrics[k] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, p)
		fmt.Fprintf(os.Stderr, "bench: %-24s %12.1f ns/op  %3d allocs/op\n", e.name, p.NsPerOp, p.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
