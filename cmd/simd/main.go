// Command simd is the sweep-as-a-service daemon: it serves the /v1
// job API over HTTP, deduplicates in-flight cells across jobs, and
// memoizes per-cell results in a content-addressed two-tier cache so
// a resubmitted matrix is answered from disk byte-for-byte instead of
// resimulated.
//
// Usage:
//
//	simd                                  # serve on :8377, memory-only cache
//	simd -addr :8080 -cache-dir /var/lib/simd
//	simd -queue 64 -jobs 4 -cell-workers 8
//	simd -batch 0                         # scalar per-cell engines (batched lockstep is the default)
//	simd -platform-spec specs/smalldie.json  # extra -platforms names
//
// SIGINT/SIGTERM starts a graceful drain: new submissions are refused
// with 503, queued and running jobs finish (bounded by
// -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/simd"
	"repro/pkg/mobisim"
)

func main() {
	var (
		addr         = flag.String("addr", ":8377", "HTTP listen address")
		cacheDir     = flag.String("cache-dir", "", "on-disk result cache root (empty = memory-only, no prefix snapshots)")
		queueCap     = flag.Int("queue", 16, "pending-job queue capacity; a full queue answers 429")
		jobWorkers   = flag.Int("jobs", 2, "jobs executed concurrently")
		cellWorkers  = flag.Int("cell-workers", 0, "per-job cell concurrency (0 = GOMAXPROCS)")
		batchWidth   = flag.Int("batch", -1, "lockstep lane width for cache-miss cells (-1 = default width, 0 = scalar per-cell engines); responses are byte-identical either way")
		memCache     = flag.Int("mem-cache", simd.DefaultMemCacheCap, "in-memory cache tier capacity in cells")
		maxBody      = flag.Int64("max-body", 1<<20, "job submission body limit in bytes")
		platformSpec = flag.String("platform-spec", "", "comma-separated platform spec JSON files to register; their names become valid platform values in submitted jobs")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM before running jobs are killed")
	)
	flag.Parse()

	for _, path := range splitList(*platformSpec) {
		name, err := mobisim.RegisterPlatformFile(path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "simd: registered platform %q from %s\n", name, path)
	}

	srv, err := simd.NewServer(simd.Config{
		QueueCap:     *queueCap,
		JobWorkers:   *jobWorkers,
		CellWorkers:  *cellWorkers,
		BatchWidth:   *batchWidth,
		CacheDir:     *cacheDir,
		MemCacheCap:  *memCache,
		MaxBodyBytes: *maxBody,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "simd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	if n := srv.Recovered(); n > 0 {
		fmt.Fprintf(os.Stderr, "simd: journal recovery: re-enqueued %d incomplete job(s)\n", n)
	}
	if srv.Degraded() {
		fmt.Fprintf(os.Stderr, "simd: DEGRADED (serving memory-only): %s\n",
			strings.Join(srv.DegradedReasons(), "; "))
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	cacheNote := "memory-only cache"
	if *cacheDir != "" {
		cacheNote = "cache at " + *cacheDir
	}
	batchNote := "scalar cells"
	if *batchWidth != 0 {
		w := *batchWidth
		if w < 0 {
			w = mobisim.DefaultBatchWidth
		}
		batchNote = fmt.Sprintf("lockstep batches of %d", w)
	}
	fmt.Fprintf(os.Stderr, "simd: listening on %s (%s, queue %d, %d job workers, %s)\n",
		*addr, cacheNote, *queueCap, *jobWorkers, batchNote)

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process outright

	fmt.Fprintf(os.Stderr, "simd: draining (budget %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job machinery first so /healthz flips to 503 and
	// in-flight jobs finish, then close HTTP listeners: SSE streams stay
	// attached until their jobs publish the terminal event.
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "simd: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "simd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "simd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
