// Command repro regenerates every table and figure of the paper's
// evaluation on the simulated platforms and renders them as text
// charts and tables.
//
// Usage:
//
//	repro -exp all          # everything
//	repro -exp fig1         # one artifact (fig1..fig9, table1, table2)
//	repro -exp table1 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/trace"
)

// csvDir, when non-empty, receives machine-readable CSVs of every
// rendered artifact next to the text charts.
var csvDir string

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig1..fig9, table1, table2, sweep, all")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.StringVar(&csvDir, "csv", "", "directory to also write artifact CSVs into")
	flag.Parse()

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	runners := map[string]func(int64) error{
		"fig1":   func(s int64) error { return tempFig("fig1", "paper.io", s) },
		"fig2":   func(s int64) error { return residencyFig("fig2", "paper.io", platform.DomGPU, s) },
		"fig3":   func(s int64) error { return tempFig("fig3", "stickman-hook", s) },
		"fig4":   func(s int64) error { return residencyFig("fig4", "stickman-hook", platform.DomGPU, s) },
		"fig5":   func(s int64) error { return tempFig("fig5", "amazon", s) },
		"fig6":   func(s int64) error { return residencyFig("fig6", "amazon", platform.DomBig, s) },
		"table1": table1,
		"fig7":   func(int64) error { return fig7() },
		"fig8":   fig8,
		"fig9":   fig9,
		"table2": table2,
		"sweep":  sweep,
	}
	order := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1", "fig7", "fig8", "fig9", "table2"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](*seed); err != nil {
				fatal(err)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want fig1..fig9, table1, table2, all)", *exp))
	}
	if err := run(*seed); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}

// sweep runs the thermal-limit trade-off study (not a paper artifact;
// the extension study DESIGN.md describes).
func sweep(seed int64) error {
	limits := []float64{52, 55, 58, 62, 66, 70}
	points, err := experiments.LimitSweep(limits, 120, seed)
	if err != nil {
		return err
	}
	fmt.Println("sweep: thermal-limit trade-off, 3DMark+BML under the proposed governor")
	fmt.Printf("%10s %10s %10s %12s %14s\n", "limit (°C)", "GT1 FPS", "peak (°C)", "migrations", "BML iters")
	var csv strings.Builder
	csv.WriteString("limit_c,gt1_fps,peak_c,migrations,bml_iterations\n")
	for _, p := range points {
		fmt.Printf("%10.0f %10.1f %10.1f %12d %14d\n", p.LimitC, p.GT1FPS, p.PeakC, p.Migrations, p.BMLIterations)
		fmt.Fprintf(&csv, "%g,%g,%g,%d,%d\n", p.LimitC, p.GT1FPS, p.PeakC, p.Migrations, p.BMLIterations)
	}
	fmt.Println()
	return writeCSV("sweep.csv", csv.String())
}

// writeCSV stores content under csvDir when CSV export is enabled.
func writeCSV(name, content string) error {
	if csvDir == "" {
		return nil
	}
	return os.WriteFile(filepath.Join(csvDir, name), []byte(content), 0o644)
}

// residencyCSV renders a residency comparison as CSV rows.
func residencyCSV(res *experiments.Residency) string {
	var b strings.Builder
	b.WriteString("freq_hz,share_without,share_with\n")
	for _, f := range res.FreqsHz {
		fmt.Fprintf(&b, "%d,%g,%g\n", f, res.Without[f], res.With[f])
	}
	return b.String()
}

func tempFig(id, app string, seed int64) error {
	res, err := experiments.TempProfileExperiment(app, seed)
	if err != nil {
		return err
	}
	chart, err := trace.LineChart(trace.LineChartConfig{
		Title:  fmt.Sprintf("%s: package temperature profile for %s (cf. paper Fig. %s)", id, app, id[3:]),
		YLabel: "°C",
	}, res.Without, res.With)
	if err != nil {
		return err
	}
	fmt.Println(chart)
	csv, err := trace.MultiCSV(1.0, res.Without, res.With)
	if err != nil {
		return err
	}
	return writeCSV(id+".csv", csv)
}

func residencyFig(id, app string, dom platform.DomainID, seed int64) error {
	res, err := experiments.ResidencyExperiment(app, dom, seed)
	if err != nil {
		return err
	}
	chart, err := trace.BarChart(
		fmt.Sprintf("%s: %s frequency residency for %s (cf. paper Fig. %s)", id, dom, app, id[3:]),
		[]string{"without throttling", "with throttling"},
		res.BarGroups(),
	)
	if err != nil {
		return err
	}
	fmt.Println(chart)
	return writeCSV(id+".csv", residencyCSV(res))
}

func table1(seed int64) error {
	rows, err := experiments.Table1Experiment(seed)
	if err != nil {
		return err
	}
	fmt.Println("table1: median frame rate with and without throttling (cf. paper Table I)")
	fmt.Printf("%-15s %12s %12s %12s\n", "App", "Without", "With", "Reduction")
	var csv strings.Builder
	csv.WriteString("app,fps_without,fps_with,reduction_pct\n")
	for _, r := range rows {
		fmt.Printf("%-15s %9.0f FPS %9.0f FPS %11.0f%%\n", r.App, r.WithoutFPS, r.WithFPS, r.ReductionPct)
		fmt.Fprintf(&csv, "%s,%g,%g,%g\n", r.App, r.WithoutFPS, r.WithFPS, r.ReductionPct)
	}
	fmt.Println()
	return writeCSV("table1.csv", csv.String())
}

func fig7() error {
	curves, crit, err := experiments.Fig7Experiment()
	if err != nil {
		return err
	}
	fmt.Printf("fig7: fixed-point functions (critical power = %.2f W; cf. paper Fig. 7)\n", crit)
	for _, c := range curves {
		series := trace.NewSeries(fmt.Sprintf("Pd=%.1fW [%s]", c.PowerW, c.Analysis.Class), "ψ")
		for i := range c.Theta {
			series.MustAppend(c.Theta[i], c.Psi[i])
		}
		chart, err := trace.LineChart(trace.LineChartConfig{
			Title:  fmt.Sprintf("  ψ(θ) at Pd = %.2f W — %s", c.PowerW, c.Analysis.Class),
			Height: 12,
			YMin:   -5, YMax: 2.5,
		}, series)
		if err != nil {
			return err
		}
		fmt.Println(chart)
		if c.Analysis.StableTheta != 0 {
			fmt.Printf("  stable fixed point:   θ=%.3f  T=%.1f°C\n",
				c.Analysis.StableTheta, c.Analysis.StableTempK-273.15)
			fmt.Printf("  unstable fixed point: θ=%.3f  T=%.1f°C\n\n",
				c.Analysis.UnstableTheta, c.Analysis.UnstableTempK-273.15)
		} else {
			fmt.Println("  no fixed points (thermal runaway)")
			fmt.Println()
		}
	}
	return nil
}

func fig8(seed int64) error {
	res, err := experiments.Fig8Experiment(seed)
	if err != nil {
		return err
	}
	chart, err := trace.LineChart(trace.LineChartConfig{
		Title: "fig8: maximum system temperature, 3DMark scenarios (cf. paper Fig. 8)",
	}, res.Alone, res.WithBML, res.Proposed)
	if err != nil {
		return err
	}
	fmt.Println(chart)
	fmt.Printf("  peak: alone %.1f°C, +BML %.1f°C, proposed %.1f°C\n\n",
		res.Alone.Max(), res.WithBML.Max(), res.Proposed.Max())
	csv, err := trace.MultiCSV(1.0, res.Alone, res.WithBML, res.Proposed)
	if err != nil {
		return err
	}
	return writeCSV("fig8.csv", csv)
}

func fig9(seed int64) error {
	results, err := experiments.Fig9Experiment(seed)
	if err != nil {
		return err
	}
	var csv strings.Builder
	csv.WriteString("scenario,total_w,little,big,mem,gpu\n")
	for i, r := range results {
		chart, err := trace.ShareChart(
			fmt.Sprintf("fig9%c: power distribution, %s (total %.2f W; cf. paper Fig. 9)",
				'a'+i, r.Mode, r.TotalW),
			r.Slices(),
		)
		if err != nil {
			return err
		}
		fmt.Println(chart)
		fmt.Fprintf(&csv, "%q,%g", r.Mode, r.TotalW)
		for _, s := range r.Slices() {
			fmt.Fprintf(&csv, ",%g", s.Share)
		}
		csv.WriteByte('\n')
	}
	return writeCSV("fig9.csv", csv.String())
}

func table2(seed int64) error {
	rows, err := experiments.Table2Experiment(seed)
	if err != nil {
		return err
	}
	fmt.Println("table2: application performance under the proposed control (cf. paper Table II)")
	fmt.Printf("%-12s %14s %14s %22s\n", "Test", "App. Alone", "App. + BML", "App.+BML w/ Proposed")
	var csv strings.Builder
	csv.WriteString("test,unit,alone,with_bml,proposed\n")
	for _, r := range rows {
		fmt.Printf("%-12s %10.1f %s %10.1f %s %18.1f %s\n",
			r.Test, r.Alone, r.Unit, r.WithBML, r.Unit, r.Proposed, r.Unit)
		fmt.Fprintf(&csv, "%s,%s,%g,%g,%g\n", r.Test, r.Unit, r.Alone, r.WithBML, r.Proposed)
	}
	fmt.Println()
	return writeCSV("table2.csv", csv.String())
}
