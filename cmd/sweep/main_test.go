package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/pkg/mobisim"
)

func tinySweepOutput(t *testing.T) *mobisim.SweepOutput {
	t.Helper()
	m := mobisim.Matrix{
		Platforms: []string{mobisim.PlatformOdroidXU3},
		Workloads: []string{"3dmark"},
		Governors: []string{mobisim.GovNone},
		DurationS: 1,
		BaseSeed:  3,
	}
	m.Normalize()
	out, err := mobisim.RunSweep(context.Background(), m, mobisim.SweepConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPickRenderer pins the up-front format validation: a typo'd
// -format must fail before any simulation, and the accepted formats
// must produce the encoder's exact bytes.
func TestPickRenderer(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	out := tinySweepOutput(t)

	for _, bad := range []string{"", "xml", "JSON", "json,csv", "yaml"} {
		if _, err := pickRenderer(bad, &bytes.Buffer{}); err == nil {
			t.Errorf("format %q accepted, want error", bad)
		} else if !strings.Contains(err.Error(), "format") {
			t.Errorf("format %q: unhelpful error %v", bad, err)
		}
	}

	var got, want bytes.Buffer
	render, err := pickRenderer("json", &got)
	if err != nil {
		t.Fatal(err)
	}
	if err := render(out); err != nil {
		t.Fatal(err)
	}
	if err := out.EncodeJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("json renderer output differs from EncodeJSON")
	}

	got.Reset()
	want.Reset()
	render, err = pickRenderer("csv", &got)
	if err != nil {
		t.Fatal(err)
	}
	if err := render(out); err != nil {
		t.Fatal(err)
	}
	if err := out.EncodeCSV(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("csv renderer output differs from EncodeCSV")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c,")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList: %v", got)
	}
	if out := splitList(""); out != nil {
		t.Fatalf("splitList(\"\"): %v", out)
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("52, 58.5,70")
	if err != nil || len(got) != 3 || got[1] != 58.5 {
		t.Fatalf("parseFloats: %v, %v", got, err)
	}
	if _, err := parseFloats("52,warm"); err == nil {
		t.Fatal("parseFloats accepted a non-number")
	}
}
