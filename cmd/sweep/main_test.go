package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simd"
	"repro/pkg/mobisim"
)

func tinySweepOutput(t *testing.T) *mobisim.SweepOutput {
	t.Helper()
	m := mobisim.Matrix{
		Platforms: []string{mobisim.PlatformOdroidXU3},
		Workloads: []string{"3dmark"},
		Governors: []string{mobisim.GovNone},
		DurationS: 1,
		BaseSeed:  3,
	}
	m.Normalize()
	out, err := mobisim.RunSweep(context.Background(), m, mobisim.SweepConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPickRenderer pins the up-front format validation: a typo'd
// -format must fail before any simulation, and the accepted formats
// must produce the encoder's exact bytes.
func TestPickRenderer(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	out := tinySweepOutput(t)

	for _, bad := range []string{"", "xml", "JSON", "json,csv", "yaml"} {
		if _, err := pickRenderer(bad, &bytes.Buffer{}); err == nil {
			t.Errorf("format %q accepted, want error", bad)
		} else if !strings.Contains(err.Error(), "format") {
			t.Errorf("format %q: unhelpful error %v", bad, err)
		}
	}

	var got, want bytes.Buffer
	render, err := pickRenderer("json", &got)
	if err != nil {
		t.Fatal(err)
	}
	if err := render(out); err != nil {
		t.Fatal(err)
	}
	if err := out.EncodeJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("json renderer output differs from EncodeJSON")
	}

	got.Reset()
	want.Reset()
	render, err = pickRenderer("csv", &got)
	if err != nil {
		t.Fatal(err)
	}
	if err := render(out); err != nil {
		t.Fatal(err)
	}
	if err := out.EncodeCSV(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("csv renderer output differs from EncodeCSV")
	}
}

// TestOpenCacheOrWarnDegrades pins the -cache-dir failure policy: an
// unusable cache directory warns and runs the sweep uncached instead
// of aborting. (A regular file is used as the "directory" because it
// defeats MkdirAll even for root.)
func TestOpenCacheOrWarnDegrades(t *testing.T) {
	notADir := filepath.Join(t.TempDir(), "cache")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var warn bytes.Buffer
	if cache := openCacheOrWarn(notADir, &warn); cache != nil {
		t.Fatal("unusable cache dir must degrade to nil cache")
	}
	if !strings.Contains(warn.String(), "running uncached") {
		t.Errorf("warning %q must say the sweep runs uncached", warn.String())
	}

	warn.Reset()
	if cache := openCacheOrWarn("", &warn); cache != nil || warn.Len() != 0 {
		t.Errorf("no -cache-dir must mean no cache and no warning (cache=%v, warn=%q)", cache, warn.String())
	}

	warn.Reset()
	good := filepath.Join(t.TempDir(), "cache")
	cache := openCacheOrWarn(good, &warn)
	if cache == nil || warn.Len() != 0 {
		t.Fatalf("usable cache dir must open silently (cache=%v, warn=%q)", cache, warn.String())
	}
	if cache.Dir() == "" {
		t.Error("opened cache must be disk-backed")
	}
}

// TestDaemonEnvelope pins the -daemon submission body: deterministic
// bytes (stable idempotency key) that the daemon's strict parser
// accepts.
func TestDaemonEnvelope(t *testing.T) {
	m := mobisim.Matrix{
		Platforms: []string{mobisim.PlatformOdroidXU3},
		Workloads: []string{"3dmark"},
		Governors: []string{mobisim.GovNone},
		DurationS: 1,
		BaseSeed:  3,
	}
	m.Normalize()
	a, err := daemonEnvelope(m, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := daemonEnvelope(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("envelope bytes must be deterministic")
	}
	if _, err := simd.ParseJobRequest(a); err != nil {
		t.Errorf("daemon parser rejected the envelope: %v", err)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c,")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList: %v", got)
	}
	if out := splitList(""); out != nil {
		t.Fatalf("splitList(\"\"): %v", out)
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("52, 58.5,70")
	if err != nil || len(got) != 3 || got[1] != 58.5 {
		t.Fatalf("parseFloats: %v, %v", got, err)
	}
	if _, err := parseFloats("52,warm"); err == nil {
		t.Fatal("parseFloats accepted a non-number")
	}
}
