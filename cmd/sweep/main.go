// Command sweep expands a scenario matrix from flags and runs it on
// the parallel worker pool, emitting aggregated summaries (and
// optionally raw per-scenario results) as JSON or CSV.
//
// Usage:
//
//	sweep -limits 52,58,64,70                       # 3DMark+BML limit sweep
//	sweep -limits 55,65 -replicates 4 -workers 8    # 4 seed replicates per cell
//	sweep -governors appaware,ipa -format csv       # arm comparison as CSV
//	sweep -platforms nexus6p -workloads paper.io -governors stepwise,none
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	var (
		platforms  = flag.String("platforms", experiments.PlatformOdroid, "comma-separated platforms (odroid-xu3, nexus6p)")
		workloads  = flag.String("workloads", "3dmark+bml", "comma-separated workload mixes (3dmark, nenamark, paper.io, ...; +bml adds the background task)")
		governors  = flag.String("governors", experiments.GovAppAware, "comma-separated governor arms (appaware, ipa, stepwise, none)")
		limits     = flag.String("limits", "52,58,64,70", "comma-separated appaware thermal limits in °C (0 keeps the platform default; collapsed to one cell for limit-agnostic arms)")
		replicates = flag.Int("replicates", 1, "seed replicates per parameter cell")
		duration   = flag.Float64("duration", 120, "simulated seconds per scenario")
		seed       = flag.Int64("seed", 1, "base seed for per-replicate seed derivation")
		workers    = flag.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
		format     = flag.String("format", "json", "output format: json or csv")
		raw        = flag.Bool("raw", false, "include raw per-scenario results (json only)")
	)
	flag.Parse()

	// Pick the renderer up front so a typo'd -format fails before hours
	// of simulation, and so format validation lives in one place.
	var render func(summaries []sweep.Summary, results []sweep.Result) error
	switch *format {
	case "json":
		render = func(s []sweep.Summary, r []sweep.Result) error { return writeJSON(s, r, *raw) }
	case "csv":
		render = func(s []sweep.Summary, _ []sweep.Result) error { return writeCSV(s) }
	default:
		fatal(fmt.Errorf("unknown format %q (want json or csv)", *format))
	}
	limitsC, err := parseFloats(*limits)
	if err != nil {
		fatal(fmt.Errorf("bad -limits: %w", err))
	}
	scenarios, err := expandScenarios(sweep.Matrix{
		Platforms:  splitList(*platforms),
		Workloads:  splitList(*workloads),
		Governors:  splitList(*governors),
		LimitsC:    limitsC,
		Replicates: *replicates,
		DurationS:  *duration,
		BaseSeed:   *seed,
	})
	if err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the sweep: queued scenarios never start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	if nWorkers > len(scenarios) {
		nWorkers = len(scenarios) // the pool clamps too; keep the banner honest
	}
	fmt.Fprintf(os.Stderr, "sweep: %d scenarios × %.0fs simulated on %d workers\n",
		len(scenarios), *duration, nWorkers)

	start := time.Now()
	pool := &sweep.Pool{Workers: nWorkers, RunFunc: experiments.RunScenario}
	results, err := pool.Run(ctx, scenarios)
	if err != nil {
		fatal(err)
	}
	summaries, err := sweep.Aggregate(results)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: done in %.1fs\n", time.Since(start).Seconds())

	if err := render(summaries, results); err != nil {
		fatal(err)
	}
}

// expandScenarios expands the matrix, collapsing the limits axis for
// limit-agnostic governor arms: only appaware reads LimitC, so sweeping
// limits under ipa/stepwise/none would run bitwise-identical duplicate
// simulations and emit duplicate summary rows.
func expandScenarios(m sweep.Matrix) ([]sweep.Scenario, error) {
	var aware, agnostic []string
	for _, g := range m.Governors {
		if g == experiments.GovAppAware {
			aware = append(aware, g)
		} else {
			agnostic = append(agnostic, g)
		}
	}
	if len(aware) == 0 || len(agnostic) == 0 {
		if len(agnostic) > 0 {
			m.LimitsC = []float64{0} // platform default; one cell per arm
		}
		return m.Scenarios()
	}
	awareM, agnosticM := m, m
	awareM.Governors = aware
	agnosticM.Governors = agnostic
	agnosticM.LimitsC = []float64{0}
	scenarios, err := awareM.Scenarios()
	if err != nil {
		return nil, err
	}
	tail, err := agnosticM.Scenarios()
	if err != nil {
		return nil, err
	}
	for i := range tail {
		tail[i].Index = len(scenarios) + i
	}
	return append(scenarios, tail...), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	parts := splitList(s)
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// jsonStat mirrors sweep.Stat with lower-case keys.
type jsonStat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// jsonSummary is one aggregated parameter cell.
type jsonSummary struct {
	Platform   string              `json:"platform"`
	Workload   string              `json:"workload"`
	Governor   string              `json:"governor"`
	LimitC     float64             `json:"limit_c"`
	DurationS  float64             `json:"duration_s"`
	Replicates int                 `json:"replicates"`
	Metrics    map[string]jsonStat `json:"metrics"`
}

// jsonResult is one raw scenario result.
type jsonResult struct {
	Index     int                `json:"index"`
	Platform  string             `json:"platform"`
	Workload  string             `json:"workload"`
	Governor  string             `json:"governor"`
	LimitC    float64            `json:"limit_c"`
	Replicate int                `json:"replicate"`
	Seed      int64              `json:"seed"`
	Metrics   map[string]float64 `json:"metrics"`
}

func writeJSON(summaries []sweep.Summary, results []sweep.Result, raw bool) error {
	doc := struct {
		Summaries []jsonSummary `json:"summaries"`
		Results   []jsonResult  `json:"results,omitempty"`
	}{}
	for _, s := range summaries {
		ms := make(map[string]jsonStat, len(s.Metrics))
		for name, st := range s.Metrics {
			ms[name] = jsonStat{Mean: st.Mean, Min: st.Min, Max: st.Max, P50: st.P50, P95: st.P95}
		}
		doc.Summaries = append(doc.Summaries, jsonSummary{
			Platform: s.Platform, Workload: s.Workload, Governor: s.Governor,
			LimitC: s.LimitC, DurationS: s.DurationS, Replicates: s.Replicates,
			Metrics: ms,
		})
	}
	if raw {
		for _, r := range results {
			doc.Results = append(doc.Results, jsonResult{
				Index: r.Scenario.Index, Platform: r.Scenario.Platform,
				Workload: r.Scenario.Workload, Governor: r.Scenario.Governor,
				LimitC: r.Scenario.LimitC, Replicate: r.Scenario.Replicate,
				Seed: r.Scenario.Seed, Metrics: r.Metrics,
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func writeCSV(summaries []sweep.Summary) error {
	var b strings.Builder
	b.WriteString("platform,workload,governor,limit_c,duration_s,replicates,metric,mean,min,max,p50,p95\n")
	for _, s := range summaries {
		for _, name := range s.MetricNames {
			st := s.Metrics[name]
			fmt.Fprintf(&b, "%s,%s,%s,%g,%g,%d,%s,%g,%g,%g,%g,%g\n",
				s.Platform, s.Workload, s.Governor, s.LimitC, s.DurationS,
				s.Replicates, name, st.Mean, st.Min, st.Max, st.P50, st.P95)
		}
	}
	_, err := os.Stdout.WriteString(b.String())
	return err
}
