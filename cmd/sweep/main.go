// Command sweep expands a scenario matrix — from a declarative JSON
// spec file or from flags — and runs it on the parallel worker pool,
// emitting aggregated summaries (and optionally raw per-scenario
// results) as JSON or CSV. Scenario runs are constant-memory: metrics
// stream out of accumulators instead of materialized traces.
//
// Usage:
//
//	sweep -matrix matrix.json                       # declarative sweep spec
//	sweep -limits 52,58,64,70                       # 3DMark+BML limit sweep
//	sweep -limits 55,65 -replicates 4 -workers 8    # 4 seed replicates per cell
//	sweep -governors appaware,ipa -format csv       # arm comparison as CSV
//	sweep -platforms nexus6p -workloads paper.io -governors stepwise,none
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/pkg/mobisim"
)

func main() {
	var (
		matrixPath = flag.String("matrix", "", "JSON matrix spec file (overrides the axis flags)")
		platforms  = flag.String("platforms", mobisim.PlatformOdroidXU3, "comma-separated platforms (odroid-xu3, nexus6p)")
		workloads  = flag.String("workloads", "3dmark+bml", "comma-separated workload mixes (3dmark, nenamark, paper.io, ...; +bml adds the background task)")
		governors  = flag.String("governors", mobisim.GovAppAware, "comma-separated governor arms (appaware, ipa, stepwise, none)")
		limits     = flag.String("limits", "52,58,64,70", "comma-separated appaware thermal limits in °C (0 keeps the platform default; collapsed to one cell for limit-agnostic arms)")
		replicates = flag.Int("replicates", 1, "seed replicates per parameter cell")
		duration   = flag.Float64("duration", 120, "simulated seconds per scenario")
		seed       = flag.Int64("seed", 1, "base seed for per-replicate seed derivation")
		workers    = flag.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
		format     = flag.String("format", "json", "output format: json or csv")
		raw        = flag.Bool("raw", false, "include raw per-scenario results (json only)")
	)
	flag.Parse()

	// Pick the renderer up front so a typo'd -format fails before hours
	// of simulation, and so format validation lives in one place.
	var render func(out *mobisim.SweepOutput) error
	switch *format {
	case "json":
		render = func(out *mobisim.SweepOutput) error { return out.EncodeJSON(os.Stdout) }
	case "csv":
		render = func(out *mobisim.SweepOutput) error { return out.EncodeCSV(os.Stdout) }
	default:
		fatal(fmt.Errorf("unknown format %q (want json or csv)", *format))
	}

	var matrix mobisim.Matrix
	if *matrixPath != "" {
		m, err := mobisim.LoadMatrix(*matrixPath)
		if err != nil {
			fatal(err)
		}
		matrix = m
	} else {
		limitsC, err := parseFloats(*limits)
		if err != nil {
			fatal(fmt.Errorf("bad -limits: %w", err))
		}
		matrix = mobisim.Matrix{
			Platforms:  splitList(*platforms),
			Workloads:  splitList(*workloads),
			Governors:  splitList(*governors),
			LimitsC:    limitsC,
			Replicates: *replicates,
			DurationS:  *duration,
			BaseSeed:   *seed,
		}
		matrix.Normalize()
		if err := matrix.Validate(); err != nil {
			fatal(err)
		}
	}

	// Ctrl-C cancels the sweep: queued scenarios never start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	size := matrix.ExpandedSize()
	if nWorkers > size {
		nWorkers = size // the pool clamps too; keep the banner honest
	}
	fmt.Fprintf(os.Stderr, "sweep: %d scenarios × %.0fs simulated on %d workers\n",
		size, matrix.DurationS, nWorkers)

	start := time.Now()
	out, err := mobisim.RunSweep(ctx, matrix, mobisim.SweepConfig{Workers: nWorkers, IncludeRaw: *raw})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: done in %.1fs\n", time.Since(start).Seconds())

	if err := render(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	parts := splitList(s)
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
