// Command sweep expands a scenario matrix — from a declarative JSON
// spec file or from flags — and runs it on the parallel worker pool,
// emitting aggregated summaries (and optionally raw per-scenario
// results) as JSON or CSV. Scenario runs are constant-memory: metrics
// stream out of accumulators instead of materialized traces.
//
// Usage:
//
//	sweep -matrix matrix.json                       # declarative sweep spec
//	sweep -limits 52,58,64,70                       # 3DMark+BML limit sweep
//	sweep -limits 55,65 -replicates 4 -workers 8    # 4 seed replicates per cell
//	sweep -governors appaware,ipa -format csv       # arm comparison as CSV
//	sweep -platforms nexus6p -workloads paper.io -governors stepwise,none
//	sweep -platform-spec testdata/platforms/smalldie.json -platforms smalldie -workloads gen-bursty -governors none
//	sweep -batch -1                                 # batched lockstep executor (default width)
//	sweep -warm-start -replicates 8                 # fork limit cells from shared-prefix snapshots
//	sweep -cache-dir ~/.cache/mobisim               # memoize cells in the daemon's disk cache
//	sweep -daemon http://localhost:8377             # submit to a running simd daemon
//	sweep -cpuprofile cpu.out -memprofile mem.out   # profile the sweep hot path
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/simd"
	"repro/pkg/mobisim"
	"repro/pkg/simclient"
)

func main() {
	var (
		matrixPath   = flag.String("matrix", "", "JSON matrix spec file (overrides the axis flags)")
		platformSpec = flag.String("platform-spec", "", "comma-separated platform spec JSON files to register; their names become valid -platforms values")
		platforms    = flag.String("platforms", mobisim.PlatformOdroidXU3, "comma-separated platforms (odroid-xu3, nexus6p, or spec-registered names)")
		workloads    = flag.String("workloads", "3dmark+bml", "comma-separated workload mixes (3dmark, nenamark, paper.io, gen-bursty, ...; +bml adds the background task)")
		governors    = flag.String("governors", mobisim.GovAppAware, "comma-separated governor arms (appaware, ipa, stepwise, none)")
		limits       = flag.String("limits", "52,58,64,70", "comma-separated appaware thermal limits in °C (0 keeps the platform default; collapsed to one cell for limit-agnostic arms)")
		replicates   = flag.Int("replicates", 1, "seed replicates per parameter cell")
		duration     = flag.Float64("duration", 120, "simulated seconds per scenario")
		seed         = flag.Int64("seed", 1, "base seed for per-replicate seed derivation")
		workers      = flag.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
		batch        = flag.Int("batch", 0, "lockstep batch width: scenarios stepped together through the fused SoA kernel (0 = sequential engines, -1 = default width)")
		warmStart    = flag.Bool("warm-start", false, "group limit-aware cells by prefix content key, simulate each group's shared warm-up once, and fork members from an engine snapshot (output bytes are identical either way)")
		cacheDir     = flag.String("cache-dir", "", "content-addressed result cache root shared with the simd daemon; cached cells are served from disk instead of resimulated (output bytes are identical either way)")
		daemonURL    = flag.String("daemon", "", "base URL of a running simd daemon; the sweep is submitted as a job and the daemon's result bytes are emitted verbatim (json only, retried with backoff across daemon restarts)")
		format       = flag.String("format", "json", "output format: json or csv")
		raw          = flag.Bool("raw", false, "include raw per-scenario results (json only)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile (post-sweep) to this file")
	)
	flag.Parse()

	// Register user platform specs before any matrix validation, so
	// spec files and flags may reference them by name.
	for _, path := range splitList(*platformSpec) {
		name, err := mobisim.RegisterPlatformFile(path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: registered platform %q from %s\n", name, path)
	}

	// Pick the renderer up front so a typo'd -format fails before hours
	// of simulation, and so format validation lives in one place.
	render, err := pickRenderer(*format, os.Stdout)
	if err != nil {
		fatal(err)
	}

	// The cache path runs cells through the daemon's scheduler, which
	// the batch/warm-start executors bypass — the combinations would
	// silently ignore one flag, so refuse them.
	if *cacheDir != "" && (*batch != 0 || *warmStart) {
		fatal(fmt.Errorf("-cache-dir is incompatible with -batch and -warm-start (the cache scheduler replaces those executors)"))
	}
	if *daemonURL != "" {
		if *cacheDir != "" || *batch != 0 || *warmStart {
			fatal(fmt.Errorf("-daemon is incompatible with -cache-dir, -batch and -warm-start (the daemon schedules cells itself)"))
		}
		if *format != "json" {
			fatal(fmt.Errorf("-daemon emits the daemon's result bytes verbatim, which are json; use -format json"))
		}
	}

	var matrix mobisim.Matrix
	if *matrixPath != "" {
		m, err := mobisim.LoadMatrix(*matrixPath)
		if err != nil {
			fatal(err)
		}
		matrix = m
	} else {
		limitsC, err := parseFloats(*limits)
		if err != nil {
			fatal(fmt.Errorf("bad -limits: %w", err))
		}
		matrix = mobisim.Matrix{
			Platforms:  splitList(*platforms),
			Workloads:  splitList(*workloads),
			Governors:  splitList(*governors),
			LimitsC:    limitsC,
			Replicates: *replicates,
			DurationS:  *duration,
			BaseSeed:   *seed,
		}
		matrix.Normalize()
		if err := matrix.Validate(); err != nil {
			fatal(err)
		}
	}

	// Ctrl-C cancels the sweep: queued scenarios never start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Daemon mode: submit the matrix as one job and emit the daemon's
	// result bytes verbatim (they are the same bytes a local run would
	// produce). The client retries with backoff and resubmits
	// idempotently across daemon restarts.
	if *daemonURL != "" {
		envelope, err := daemonEnvelope(matrix, *raw)
		if err != nil {
			fatal(err)
		}
		c := simclient.New(*daemonURL)
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
		}
		start := time.Now()
		body, st, err := c.Run(ctx, envelope)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: job %s done in %.1fs via %s\n",
			st.ID, time.Since(start).Seconds(), *daemonURL)
		if _, err := os.Stdout.Write(body); err != nil {
			fatal(err)
		}
		return
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	size := matrix.ExpandedSize()
	if nWorkers > size {
		nWorkers = size // the pool clamps too; keep the banner honest
	}
	width := *batch
	if width < 0 {
		width = mobisim.DefaultBatchWidth
	}
	mode := ""
	if width > 0 {
		mode = fmt.Sprintf(", lockstep batches of %d", width)
	}
	if *warmStart {
		mode += ", prefix warm-start"
	}
	// The disk cache degrades instead of gating the sweep: an unusable
	// -cache-dir warns and runs uncached rather than aborting.
	cache := openCacheOrWarn(*cacheDir, os.Stderr)
	if cache != nil {
		mode += ", result cache at " + *cacheDir
	}
	fmt.Fprintf(os.Stderr, "sweep: %d scenarios × %.0fs simulated on %d workers%s\n",
		size, matrix.DurationS, nWorkers, mode)

	// Profiling hooks: hot-path regressions in the sweep executor are
	// diagnosed with `sweep -cpuprofile cpu.out ...` + `go tool pprof`
	// instead of editing code. The profile is stopped and flushed
	// before any fatal exit — fatal's os.Exit skips defers, and a
	// failing run is exactly the one worth profiling.
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		cpuFile = f
	}
	stopCPUProfile := func() {
		if cpuFile == nil {
			return
		}
		pprof.StopCPUProfile()
		cpuFile.Close()
		cpuFile = nil
	}

	start := time.Now()
	var out *mobisim.SweepOutput
	if cache != nil {
		var stats simd.RunStats
		out, stats, err = simd.RunSweepCached(ctx, matrix, nWorkers, *raw, cache)
		stopCPUProfile()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: done in %.1fs (%d/%d cells from cache, %d computed, %d warm-started)\n",
			time.Since(start).Seconds(), stats.CacheHits(), stats.Total,
			stats.ByOrigin[simd.OriginComputed], stats.ByOrigin[simd.OriginComputedWarm])
	} else {
		out, err = mobisim.RunSweep(ctx, matrix, mobisim.SweepConfig{Workers: nWorkers, IncludeRaw: *raw, BatchWidth: width, WarmStart: *warmStart})
		stopCPUProfile()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: done in %.1fs\n", time.Since(start).Seconds())
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // surface live retention, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if err := render(out); err != nil {
		fatal(err)
	}
}

// openCacheOrWarn opens the shared disk cache, degrading to uncached
// execution instead of aborting when the directory is unusable: a bad
// cache only costs future hits, never the sweep. Empty dir = no cache
// requested, no warning.
func openCacheOrWarn(dir string, warn io.Writer) *simd.Cache {
	if dir == "" {
		return nil
	}
	cache, err := simd.NewCache(dir, 0)
	if err != nil {
		fmt.Fprintf(warn, "sweep: cache disabled, running uncached: %v\n", err)
		return nil
	}
	return cache
}

// daemonEnvelope renders the -daemon job submission body. The encoding
// is deterministic, so resubmitting the same matrix reuses the same
// idempotency key.
func daemonEnvelope(matrix mobisim.Matrix, includeRaw bool) ([]byte, error) {
	return json.Marshal(struct {
		Matrix     mobisim.Matrix `json:"matrix"`
		IncludeRaw bool           `json:"include_raw,omitempty"`
	}{matrix, includeRaw})
}

// pickRenderer resolves -format to an encoder writing to w, failing
// on unknown formats so a typo never costs a completed sweep.
func pickRenderer(format string, w io.Writer) (func(out *mobisim.SweepOutput) error, error) {
	switch format {
	case "json":
		return func(out *mobisim.SweepOutput) error { return out.EncodeJSON(w) }, nil
	case "csv":
		return func(out *mobisim.SweepOutput) error { return out.EncodeCSV(w) }, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want json or csv)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	parts := splitList(s)
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
