// Command benchdiff compares two `go test -bench` output files and
// fails when a benchmark regressed beyond a threshold — the
// dependency-free benchstat stand-in behind CI's A/B perf gate.
//
// Each input may contain multiple runs of the same benchmark
// (go test -count=N); benchdiff takes the minimum ns/op per name,
// which discards scheduler noise rather than averaging it in.
//
// Usage:
//
//	benchdiff -max-regress 10 old.txt new.txt
//	benchdiff -bench 'EngineStep|SweepBatched' old.txt new.txt
//
// Benchmarks present on only one side are reported but never fail the
// gate (a new benchmark has no baseline; a deleted one has no result).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	maxRegress := flag.Float64("max-regress", 10, "fail when new ns/op exceeds old by more than this percentage")
	benchRE := flag.String("bench", ".", "regexp selecting benchmark names to compare")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress pct] [-bench regexp] old.txt new.txt")
		os.Exit(2)
	}
	re, err := regexp.Compile(*benchRE)
	if err != nil {
		fatal(fmt.Errorf("bad -bench: %w", err))
	}
	old, err := parseBench(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := parseBench(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(old)+len(cur))
	seen := map[string]bool{}
	for n := range old {
		if !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	for n := range cur {
		if !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		o, haveOld := old[name]
		n, haveNew := cur[name]
		switch {
		case !haveOld:
			fmt.Printf("%-48s %12s -> %10.1f ns/op  (new benchmark, no baseline)\n", name, "-", n)
		case !haveNew:
			fmt.Printf("%-48s %10.1f -> %12s ns/op  (removed)\n", name, o, "-")
		default:
			delta := (n - o) / o * 100
			verdict := "ok"
			if delta > *maxRegress {
				verdict = fmt.Sprintf("REGRESSION (> %.0f%%)", *maxRegress)
				failed = true
			}
			fmt.Printf("%-48s %10.1f -> %10.1f ns/op  %+6.1f%%  %s\n", name, o, n, delta, verdict)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseBench extracts min ns/op per benchmark name from a
// `go test -bench` output file, normalizing away the -<GOMAXPROCS>
// suffix. The suffix exists only when GOMAXPROCS != 1 and is the same
// for every line of a run, so it is stripped only when every name in
// the file carries the identical numeric tail — a blind
// last-dash strip would instead eat a sub-benchmark's own numeric
// name (BenchmarkSweepBatched/width-8 → .../width) and conflate width
// variants on single-CPU machines.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type row struct {
		name string
		v    float64
	}
	var rows []row
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name, iterations, value, "ns/op", ...
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		idx := -1
		for i, tok := range fields {
			if tok == "ns/op" {
				idx = i - 1
				break
			}
		}
		if idx < 1 {
			continue
		}
		v, err := strconv.ParseFloat(fields[idx], 64)
		if err != nil {
			continue
		}
		rows = append(rows, row{name: fields[0], v: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found in %s", path)
	}

	suffix := commonNumericSuffix(rows[0].name)
	for _, r := range rows[1:] {
		if suffix == "" || !strings.HasSuffix(r.name, suffix) {
			suffix = ""
			break
		}
	}
	out := make(map[string]float64, len(rows))
	for _, r := range rows {
		name := strings.TrimSuffix(r.name, suffix)
		if prev, ok := out[name]; !ok || r.v < prev {
			out[name] = r.v
		}
	}
	return out, nil
}

// commonNumericSuffix returns name's trailing "-<digits>" (the shape
// of a GOMAXPROCS suffix), or "" when it has none.
func commonNumericSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 || i == len(name)-1 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
