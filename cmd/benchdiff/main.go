// Command benchdiff compares two `go test -bench` output files and
// fails when a benchmark regressed beyond a threshold — the
// dependency-free benchstat stand-in behind CI's A/B perf gate.
//
// Every metric column is compared, not just ns/op: ReportMetric extras
// like cells/sec and ns/lane-step are parsed from the same lines and
// gated with direction awareness — rate units (anything per second)
// regress by dropping, everything else regresses by growing. Each
// input may contain multiple runs of the same benchmark
// (go test -count=N); benchdiff takes the best value per metric (min
// for lower-is-better, max for rates), which discards scheduler noise
// rather than averaging it in.
//
// Usage:
//
//	benchdiff -max-regress 10 old.txt new.txt
//	benchdiff -bench 'EngineStep|SweepBatched' old.txt new.txt
//
// Metrics present on only one side are reported but never fail the
// gate (a new benchmark has no baseline; a deleted one has no result),
// and a zero baseline makes the relative delta undefined, so it is
// reported as degenerate instead of dividing by it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	maxRegress := flag.Float64("max-regress", 10, "fail when a metric worsens by more than this percentage")
	benchRE := flag.String("bench", ".", "regexp selecting benchmark names to compare")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress pct] [-bench regexp] old.txt new.txt")
		os.Exit(2)
	}
	re, err := regexp.Compile(*benchRE)
	if err != nil {
		fatal(fmt.Errorf("bad -bench: %w", err))
	}
	old, err := parseBenchFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := parseBenchFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	failed := false
	for _, c := range compare(old, cur, re, *maxRegress) {
		fmt.Println(c.String())
		failed = failed || c.Failed
	}
	if failed {
		os.Exit(1)
	}
}

// metricKey identifies one measured series: a benchmark name plus the
// unit of one of its columns ("ns/op", "cells/sec", "ns/lane-step", ...).
type metricKey struct {
	Name string
	Unit string
}

// higherIsBetter reports the gating direction for a unit: rates
// (anything per second) regress by dropping, everything else — times,
// bytes, allocations — regresses by growing.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s") || strings.HasSuffix(unit, "/sec")
}

// comparison is one metric's verdict, ready to print.
type comparison struct {
	Key      metricKey
	Old, New float64
	HaveOld  bool
	HaveNew  bool
	// Delta is the signed percentage change (undefined when Degenerate).
	Delta      float64
	Degenerate bool // zero baseline: relative change is undefined
	Failed     bool
}

func (c comparison) String() string {
	label := fmt.Sprintf("%s [%s]", c.Key.Name, c.Key.Unit)
	switch {
	case !c.HaveOld:
		return fmt.Sprintf("%-60s %12s -> %12.1f  (new metric, no baseline)", label, "-", c.New)
	case !c.HaveNew:
		return fmt.Sprintf("%-60s %12.1f -> %12s  (removed)", label, c.Old, "-")
	case c.Degenerate:
		return fmt.Sprintf("%-60s %12.1f -> %12.1f  (zero baseline, delta undefined)", label, c.Old, c.New)
	default:
		verdict := "ok"
		if c.Failed {
			verdict = "REGRESSION"
		}
		return fmt.Sprintf("%-60s %12.1f -> %12.1f  %+6.1f%%  %s", label, c.Old, c.New, c.Delta, verdict)
	}
}

// compare gates every metric whose benchmark name matches re. A metric
// fails when it worsens — in its unit's direction — by more than
// maxRegress percent. One-sided and zero-baseline metrics are reported
// but never fail.
func compare(old, cur map[metricKey]float64, re *regexp.Regexp, maxRegress float64) []comparison {
	keys := make([]metricKey, 0, len(old)+len(cur))
	seen := map[metricKey]bool{}
	for k := range old {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	for k := range cur {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Unit < keys[j].Unit
	})

	var out []comparison
	for _, k := range keys {
		if !re.MatchString(k.Name) {
			continue
		}
		o, haveOld := old[k]
		n, haveNew := cur[k]
		c := comparison{Key: k, Old: o, New: n, HaveOld: haveOld, HaveNew: haveNew}
		if haveOld && haveNew {
			if o == 0 {
				c.Degenerate = true
			} else {
				c.Delta = (n - o) / o * 100
				worsened := c.Delta
				if higherIsBetter(k.Unit) {
					worsened = -c.Delta
				}
				c.Failed = worsened > maxRegress
			}
		}
		out = append(out, c)
	}
	return out
}

func parseBenchFile(path string) (map[metricKey]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// parseBench extracts the best value per (benchmark, unit) from
// `go test -bench` output, normalizing away the -<GOMAXPROCS> name
// suffix. The suffix exists only when GOMAXPROCS != 1 and is the same
// for every line of a run, so it is stripped only when every name in
// the stream carries the identical numeric tail — a blind last-dash
// strip would instead eat a sub-benchmark's own numeric name
// (BenchmarkSweepBatched/width-8 → .../width) and conflate width
// variants on single-CPU machines.
func parseBench(r io.Reader) (map[metricKey]float64, error) {
	type cell struct {
		name, unit string
		v          float64
	}
	var cells []cell
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name, iterations, then value/unit pairs
		// ("1234 ns/op", "658.8 cells/sec", "0 allocs/op", ...).
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed line
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // column structure broken; ignore the tail
			}
			cells = append(cells, cell{name: fields[0], unit: fields[i+1], v: v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}

	suffix := commonNumericSuffix(cells[0].name)
	for _, c := range cells[1:] {
		if suffix == "" || !strings.HasSuffix(c.name, suffix) {
			suffix = ""
			break
		}
	}
	out := make(map[metricKey]float64, len(cells))
	for _, c := range cells {
		k := metricKey{Name: strings.TrimSuffix(c.name, suffix), Unit: c.unit}
		prev, ok := out[k]
		better := c.v < prev
		if higherIsBetter(c.unit) {
			better = c.v > prev
		}
		if !ok || better {
			out[k] = c.v
		}
	}
	return out, nil
}

// commonNumericSuffix returns name's trailing "-<digits>" (the shape
// of a GOMAXPROCS suffix), or "" when it has none.
func commonNumericSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 || i == len(name)-1 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
