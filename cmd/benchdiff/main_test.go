package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOld = `
goos: linux
goarch: amd64
BenchmarkEngineStep   	 2000000	       564.4 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineStep   	 2000000	       580.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSweepBatched/width-8 	      40	  25608000 ns/op	       312.4 cells/sec
BenchmarkSweepBatched/width-8 	      40	  26110000 ns/op	       305.1 cells/sec
PASS
`

func parseString(t *testing.T, s string) map[metricKey]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBenchAllMetrics(t *testing.T) {
	m := parseString(t, sampleOld)
	want := map[metricKey]float64{
		{"BenchmarkEngineStep", "ns/op"}:               564.4, // min across -count runs
		{"BenchmarkEngineStep", "B/op"}:                0,
		{"BenchmarkEngineStep", "allocs/op"}:           0,
		{"BenchmarkSweepBatched/width-8", "ns/op"}:     25608000,
		{"BenchmarkSweepBatched/width-8", "cells/sec"}: 312.4, // max: rates keep the best run
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d metrics, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%v = %v, want %v", k, m[k], v)
		}
	}
}

func TestParseBenchGomaxprocsSuffix(t *testing.T) {
	// When every name carries the same numeric tail it is a GOMAXPROCS
	// suffix and must be stripped...
	m := parseString(t, `
BenchmarkEngineStep-8   	 100	 564.4 ns/op
BenchmarkSweepBatched/width-8-8 	  40	 25608000 ns/op
`)
	if _, ok := m[metricKey{"BenchmarkEngineStep", "ns/op"}]; !ok {
		t.Errorf("GOMAXPROCS suffix not stripped: %v", m)
	}
	if _, ok := m[metricKey{"BenchmarkSweepBatched/width-8", "ns/op"}]; !ok {
		t.Errorf("width variant lost its own -8: %v", m)
	}

	// ...but a width variant's own -8 on a single-CPU machine must
	// survive, because the other names do not share the tail.
	m = parseString(t, `
BenchmarkEngineStep   	 100	 564.4 ns/op
BenchmarkSweepBatched/width-8 	  40	 25608000 ns/op
`)
	if _, ok := m[metricKey{"BenchmarkSweepBatched/width-8", "ns/op"}]; !ok {
		t.Errorf("single-CPU width name mangled: %v", m)
	}
}

func TestHigherIsBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"ns/op": false, "ns/lane-step": false, "B/op": false,
		"allocs/op": false, "cells/sec": true, "MB/s": true,
	} {
		if got := higherIsBetter(unit); got != want {
			t.Errorf("higherIsBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestCompareDirections(t *testing.T) {
	re := regexp.MustCompile(".")
	old := map[metricKey]float64{
		{"BenchmarkA", "ns/op"}:     100,
		{"BenchmarkA", "cells/sec"}: 100,
	}
	// ns/op +20% and cells/sec -20% are both regressions; the mirror
	// movements are both improvements.
	cur := map[metricKey]float64{
		{"BenchmarkA", "ns/op"}:     120,
		{"BenchmarkA", "cells/sec"}: 80,
	}
	cs := compare(old, cur, re, 10)
	if len(cs) != 2 {
		t.Fatalf("got %d comparisons, want 2", len(cs))
	}
	for _, c := range cs {
		if !c.Failed {
			t.Errorf("%v: want regression, got ok (delta %+.1f%%)", c.Key, c.Delta)
		}
	}
	cur = map[metricKey]float64{
		{"BenchmarkA", "ns/op"}:     80,
		{"BenchmarkA", "cells/sec"}: 120,
	}
	for _, c := range compare(old, cur, re, 10) {
		if c.Failed {
			t.Errorf("%v: improvement flagged as regression", c.Key)
		}
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// A zero baseline (e.g. 0 allocs/op) must not divide by zero or
	// fail the gate, even when the new side is nonzero — the alloc
	// gate, not the relative diff, owns that call.
	re := regexp.MustCompile(".")
	old := map[metricKey]float64{{"BenchmarkA", "allocs/op"}: 0}
	cur := map[metricKey]float64{{"BenchmarkA", "allocs/op"}: 3}
	cs := compare(old, cur, re, 10)
	if len(cs) != 1 {
		t.Fatalf("got %d comparisons, want 1", len(cs))
	}
	c := cs[0]
	if !c.Degenerate || c.Failed {
		t.Errorf("zero baseline: degenerate=%v failed=%v, want degenerate, not failed", c.Degenerate, c.Failed)
	}
	if !strings.Contains(c.String(), "zero baseline") {
		t.Errorf("degenerate case not reported: %q", c.String())
	}
}

func TestCompareOneSidedNeverFails(t *testing.T) {
	re := regexp.MustCompile(".")
	old := map[metricKey]float64{{"BenchmarkGone", "ns/op"}: 100}
	cur := map[metricKey]float64{{"BenchmarkNew", "ns/op"}: 100}
	for _, c := range compare(old, cur, re, 10) {
		if c.Failed {
			t.Errorf("one-sided metric %v failed the gate", c.Key)
		}
	}
}

func TestCompareBenchFilter(t *testing.T) {
	re := regexp.MustCompile("EngineStep$")
	old := map[metricKey]float64{
		{"BenchmarkEngineStep", "ns/op"}: 100,
		{"BenchmarkSweepWarm", "ns/op"}:  100,
	}
	cur := map[metricKey]float64{
		{"BenchmarkEngineStep", "ns/op"}: 105,
		{"BenchmarkSweepWarm", "ns/op"}:  500, // filtered out, must not fail
	}
	cs := compare(old, cur, re, 10)
	if len(cs) != 1 || cs[0].Key.Name != "BenchmarkEngineStep" {
		t.Fatalf("filter leaked: %v", cs)
	}
	if cs[0].Failed {
		t.Errorf("5%% under a 10%% threshold flagged as regression")
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Error("want error on input with no benchmark lines")
	}
}
