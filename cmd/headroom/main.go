// Command headroom is the app-developer tool the paper's conclusion
// proposes: given an app's per-frame CPU/GPU cost on a platform, it
// reports the largest frame rate the platform can sustain indefinitely
// without thermal throttling, the OPPs it runs at, and the gap to the
// unthrottled peak.
//
// Usage:
//
//	headroom -platform nexus6p -cpu 8e6 -gpu 13e6 -threads 2 -big
//	headroom -platform odroid-xu3 -cpu 40e6 -threads 2 -big -limit 70
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/headroom"
	"repro/internal/thermal"
	"repro/pkg/mobisim"
)

func main() {
	platName := flag.String("platform", "nexus6p", "platform: nexus6p or odroid-xu3")
	cpu := flag.Float64("cpu", 0, "CPU cycles per frame")
	gpu := flag.Float64("gpu", 0, "GPU cycles per frame")
	threads := flag.Int("threads", 1, "CPU threads the app can use")
	big := flag.Bool("big", true, "place CPU work on the big cluster")
	limit := flag.Float64("limit", 0, "thermal limit in °C (0 = platform default)")
	flag.Parse()

	plat, err := mobisim.LookupPlatform(*platName, 1)
	if err != nil {
		fatal(err)
	}
	limitK := 0.0
	if *limit != 0 {
		limitK = thermal.ToKelvin(*limit)
	}

	an, err := headroom.ForApp(plat, headroom.Profile{
		CPUCyclesPerFrame: *cpu,
		GPUCyclesPerFrame: *gpu,
		Threads:           *threads,
		OnBig:             *big,
	}, limitK)
	if err != nil {
		fatal(err)
	}

	effLimit := limitK
	if effLimit == 0 {
		effLimit = plat.ThermalLimitK()
	}
	fmt.Printf("platform %s, limit %.1f°C\n", plat.Name(), thermal.ToCelsius(effLimit))
	fmt.Printf("profile: cpu %.3g cyc/frame x %d threads (%s cluster), gpu %.3g cyc/frame\n",
		*cpu, *threads, cluster(*big), *gpu)
	fmt.Printf("\n  peak frame rate (thermals ignored): %.1f FPS\n", an.PeakFPS)
	fmt.Printf("  sustainable frame rate:             %.1f FPS\n", an.SustainableFPS)
	if an.SustainableFPS < an.PeakFPS-0.05 {
		loss := (an.PeakFPS - an.SustainableFPS) / an.PeakFPS * 100
		fmt.Printf("  -> thermal throttling will eventually cost %.0f%% of peak;\n", loss)
		fmt.Printf("     target <= %.0f FPS (or reduce per-frame cost) to avoid it\n", an.SustainableFPS)
	} else {
		fmt.Printf("  -> the app is thermally sustainable at its peak rate\n")
	}
	fmt.Printf("\n  at the sustainable point:\n")
	if an.CPUFreqHz > 0 {
		fmt.Printf("    cpu OPP:  %d MHz\n", an.CPUFreqHz/1_000_000)
	}
	if an.GPUFreqHz > 0 {
		fmt.Printf("    gpu OPP:  %d MHz\n", an.GPUFreqHz/1_000_000)
	}
	fmt.Printf("    power:    %.2f W (dynamic)\n", an.PowerW)
	fmt.Printf("    steady:   %.1f°C\n", thermal.ToCelsius(an.SteadyTempK))
}

func cluster(big bool) string {
	if big {
		return "big"
	}
	return "little"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "headroom:", err)
	os.Exit(1)
}
