# Build and runtime image for the simd sweep daemon (cmd/simd).
#
#   docker build -t simd .
#   docker run -p 8377:8377 -v simd-cache:/var/lib/simd simd
#
# The cache volume is the daemon's content-addressed result store:
# mounting the same volume across container restarts (or sharing it
# with `sweep -cache-dir`) keeps previously simulated cells answerable
# from disk, byte-for-byte.

FROM golang:1.21 AS build
WORKDIR /src
COPY go.mod ./
RUN go mod download
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/simd ./cmd/simd \
    && mkdir -p /out/cache

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/simd /usr/local/bin/simd
# Pre-create the cache root owned by nonroot so the daemon can write
# to it whether or not a volume is mounted over it.
COPY --from=build --chown=nonroot:nonroot /out/cache /var/lib/simd
VOLUME /var/lib/simd
EXPOSE 8377
ENTRYPOINT ["/usr/local/bin/simd", "-addr", ":8377", "-cache-dir", "/var/lib/simd"]
